package core

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync/atomic"
	"time"

	"k42trace/internal/clock"
)

// An Arena is the reserve/seal protocol of Figure 2 run over an arbitrary
// word-addressable memory: one CPU slot's control words plus its buffer
// ring, with every mutation an atomic operation on a 64-bit word. The
// in-process Tracer builds its per-CPU arenas over ordinary Go slices; the
// shm subsystem builds them over an mmap'd segment shared between
// processes, which is exactly the paper's user-mapped buffer design —
// "the buffers are mapped into the address space of the application" —
// because nothing in the protocol below needs anything richer than
// word-sized atomics on shared memory.
//
// Control-region word layout (offsets within the Ctl slice):
//
//	word 0      free-running reservation index (words)
//	word 1      in-flight logger count for the default (local) context
//	words 2-7   reserved; pads index+inflight to their own cache line
//	words 8-21  statistics counters (see ctlStat* below)
//	words 22-23 reserved
//	words 24+   slot table, CtlSlotWords words per buffer:
//	            [state, start, committed, reserved]
//
// All cross-context coordination — reservation CAS, commit counts, slot
// state transitions, the trace mask, in-flight counts — goes through these
// words, so two processes mapping the same arena obey the same protocol as
// two goroutines sharing a Tracer.
const (
	ctlIndex    = 0
	ctlInflight = 1

	ctlStatEvents       = 8
	ctlStatWords        = 9
	ctlStatRetries      = 10
	ctlStatFillerEvents = 11
	ctlStatFillerWords  = 12
	ctlStatExactFit     = 13
	ctlStatDropped      = 14
	ctlStatTooLarge     = 15
	ctlStatSeals        = 16
	ctlStatAnchors      = 17
	ctlStatBlockWaits   = 18
	ctlStatStuckSeals   = 19
	ctlStatFastHits     = 20
	ctlStatBatchOpens   = 21

	ctlSlotBase = 24
	// CtlSlotWords is the stride of one buffer slot's control words.
	CtlSlotWords = 4

	slotWState     = 0
	slotWStart     = 1
	slotWCommitted = 2
)

// CtlWords returns the size in words of one CPU's control region for the
// given number of buffers.
func CtlWords(numBufs int) int { return ctlSlotBase + CtlSlotWords*numBufs }

// Slot states, stored in the slot's state word. A buffer slot cycles
// Free -> InUse -> Pending -> Free; Draining is a daemon-side claim state
// that makes "hand this sealed buffer to exactly one consumer" a CAS even
// when the consumer polls slot words instead of receiving channel sends.
const (
	slotFree     uint64 = iota // available for writers
	slotInUse                  // current generation being filled
	slotPending                // sealed, awaiting consumer pickup/Release
	slotDraining               // claimed by a polling consumer (shm daemon)
)

// Exported slot-state values, for consumers interpreting SlotState (the
// shm inspector shows live slot states without stopping producers).
const (
	SlotFree     = slotFree
	SlotInUse    = slotInUse
	SlotPending  = slotPending
	SlotDraining = slotDraining
)

// SlotStateName returns a short human-readable name for a slot state.
func SlotStateName(s uint64) string {
	switch s {
	case slotFree:
		return "free"
	case slotInUse:
		return "in-use"
	case slotPending:
		return "pending"
	case slotDraining:
		return "draining"
	}
	return fmt.Sprintf("?%d", s)
}

// ArenaConfig describes one CPU slot's arena. Ctl and Buf may be ordinary
// slices or word views of shared memory; every field the protocol mutates
// must be 8-byte aligned (Go slices and page-aligned mappings both are).
type ArenaConfig struct {
	// Ctl is the control region; it must hold at least CtlWords(NumBufs)
	// words and start zeroed (or hold valid prior protocol state).
	Ctl []uint64
	// Buf is the trace memory: NumBufs*BufWords words.
	Buf []uint64
	// Mask is the shared trace mask gating the 64 major classes. The
	// in-process Tracer points every CPU's arena at one Tracer-local word;
	// shm points it at the segment header's mask word.
	Mask *atomic.Uint64
	// Clock supplies timestamps.
	Clock clock.Source
	// CPU is the processor slot number stamped into Sealed values.
	CPU int
	// BufWords and NumBufs mirror Config: powers of two, >= 16 and >= 2.
	BufWords int
	NumBufs  int
	// Stream selects Stream-mode sealing (as opposed to flight-recorder
	// recycling) exactly as Config.Mode does.
	Stream bool
	// UnsafeStaleTimestamp is the ablation switch; see Config.
	UnsafeStaleTimestamp bool

	// Inflight, when non-nil, is the word that counts this context's
	// loggers between reserve and commit. Defaults to the arena's own
	// inflight control word. The shm client points it at the attaching
	// process's private cell of a per-(client,CPU) matrix, so a SIGKILLed
	// process's contribution can be identified and written off.
	Inflight *uint64
	// InflightTotal, when non-nil, returns the number of loggers in flight
	// across every context sharing the arena (for quiescence waits and the
	// stuck-buffer reclaim guard). Defaults to loading the arena's own
	// inflight word, which is correct when all loggers share it.
	InflightTotal func() uint64
	// OnSeal, when non-nil, is called with each buffer sealed by a commit,
	// stuck-slot reclaim, or flush. The in-process Tracer sends on its
	// Sealed channel here. When nil, sealing is the slotPending state
	// transition alone and a polling consumer picks the buffer up with
	// TakePending — the shm arrangement, where the producer process cannot
	// signal the daemon directly.
	OnSeal func(Sealed)
	// OnFull, when non-nil, is called when Stream-mode reservation finds
	// the next slot unreleased; it should wait briefly and report whether
	// to retry (false drops the event). When nil, such events are dropped
	// immediately (the Drop policy).
	OnFull func() bool
}

// Arena runs the lockless reserve/commit/seal protocol over one CPU slot's
// control words and buffer ring. Methods on Arena are safe for concurrent
// use by any number of goroutines — or processes, when the underlying
// words are a shared mapping.
type Arena struct {
	ctl  []uint64
	buf  []uint64
	mask *atomic.Uint64

	inflight      *uint64
	inflightTotal func() uint64
	onSeal        func(Sealed)
	onFull        func() bool

	clk       clock.Source
	cpu       int
	bufWords  uint64
	numBufs   uint64
	indexMask uint64
	stream    bool
	staleTS   bool
}

// NewArena validates the configuration and returns an Arena over it.
func NewArena(c ArenaConfig) (*Arena, error) {
	if c.BufWords < 16 || bits.OnesCount(uint(c.BufWords)) != 1 {
		return nil, fmt.Errorf("core: arena BufWords must be a power of two >= 16, got %d", c.BufWords)
	}
	if c.NumBufs < 2 || bits.OnesCount(uint(c.NumBufs)) != 1 {
		return nil, fmt.Errorf("core: arena NumBufs must be a power of two >= 2, got %d", c.NumBufs)
	}
	if len(c.Ctl) < CtlWords(c.NumBufs) {
		return nil, fmt.Errorf("core: arena ctl region %d words, need %d", len(c.Ctl), CtlWords(c.NumBufs))
	}
	if len(c.Buf) != c.BufWords*c.NumBufs {
		return nil, fmt.Errorf("core: arena buf %d words, need %d", len(c.Buf), c.BufWords*c.NumBufs)
	}
	if c.Mask == nil {
		return nil, fmt.Errorf("core: arena needs a mask word")
	}
	if c.Clock == nil {
		return nil, fmt.Errorf("core: arena needs a clock")
	}
	a := &Arena{
		ctl:           c.Ctl,
		buf:           c.Buf,
		mask:          c.Mask,
		inflight:      c.Inflight,
		inflightTotal: c.InflightTotal,
		onSeal:        c.OnSeal,
		onFull:        c.OnFull,
		clk:           c.Clock,
		cpu:           c.CPU,
		bufWords:      uint64(c.BufWords),
		numBufs:       uint64(c.NumBufs),
		indexMask:     uint64(c.BufWords*c.NumBufs) - 1,
		stream:        c.Stream,
		staleTS:       c.UnsafeStaleTimestamp,
	}
	if a.inflight == nil {
		a.inflight = &a.ctl[ctlInflight]
	}
	return a, nil
}

// --- word accessors ---------------------------------------------------------

func (a *Arena) slotWord(slot, field int) *uint64 {
	return &a.ctl[ctlSlotBase+CtlSlotWords*slot+field]
}

func (a *Arena) statAdd(word int, n uint64) { atomic.AddUint64(&a.ctl[word], n) }

// Index returns the free-running reservation index in words.
func (a *Arena) Index() uint64 { return atomic.LoadUint64(&a.ctl[ctlIndex]) }

// SlotState returns the recycle state of buffer slot i.
func (a *Arena) SlotState(i int) uint64 { return atomic.LoadUint64(a.slotWord(i, slotWState)) }

// SlotStart returns the free-running start index of slot i's current
// generation.
func (a *Arena) SlotStart(i int) uint64 { return atomic.LoadUint64(a.slotWord(i, slotWStart)) }

// SlotCommitted returns slot i's commit count.
func (a *Arena) SlotCommitted(i int) uint64 {
	return atomic.LoadUint64(a.slotWord(i, slotWCommitted))
}

// Buf returns the arena's trace memory (NumBufs*BufWords words).
func (a *Arena) Buf() []uint64 { return a.buf }

// BufWords returns the buffer (alignment boundary) size in words.
func (a *Arena) BufWords() int { return int(a.bufWords) }

// NumBufs returns the number of buffers in the ring.
func (a *Arena) NumBufs() int { return int(a.numBufs) }

// CPUSlot returns the processor slot number the arena logs as.
func (a *Arena) CPUSlot() int { return a.cpu }

// InflightTotal returns the number of loggers currently between reserve
// and commit across every context sharing the arena.
func (a *Arena) InflightTotal() uint64 {
	if a.inflightTotal != nil {
		return a.inflightTotal()
	}
	return atomic.LoadUint64(&a.ctl[ctlInflight])
}

// Stats returns a snapshot of the arena's counters.
func (a *Arena) Stats() Stats {
	ld := func(w int) uint64 { return atomic.LoadUint64(&a.ctl[w]) }
	return Stats{
		Events:       ld(ctlStatEvents),
		Words:        ld(ctlStatWords),
		Retries:      ld(ctlStatRetries),
		FillerEvents: ld(ctlStatFillerEvents),
		FillerWords:  ld(ctlStatFillerWords),
		ExactFit:     ld(ctlStatExactFit),
		Dropped:      ld(ctlStatDropped),
		TooLarge:     ld(ctlStatTooLarge),
		Seals:        ld(ctlStatSeals),
		Anchors:      ld(ctlStatAnchors),
		BlockWaits:   ld(ctlStatBlockWaits),
		StuckSeals:   ld(ctlStatStuckSeals),
		FastHits:     ld(ctlStatFastHits),
		BatchOpens:   ld(ctlStatBatchOpens),
	}
}

// WaitQuiescent waits until no logger is in flight on the arena. See the
// Tracer's quiescence discussion: after a brief Gosched spin the wait
// backs off to real sleeps, so it cannot starve on GOMAXPROCS=1.
func (a *Arena) WaitQuiescent() {
	for spins := 0; a.InflightTotal() != 0; spins++ {
		if spins < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(time.Microsecond)
		}
	}
}

// --- consumer-side slot operations ------------------------------------------

// ReleaseSlot recycles a sealed buffer's slot so writers can reuse it,
// optionally zero-filling the buffer first (§3.1's mitigation: a later
// reservation that is never written then decodes as a clean hole, not as
// stale events). Must be called exactly once per non-partial Sealed value;
// partials are flush-time-only and their slot is not recycled.
func (a *Arena) ReleaseSlot(s Sealed, zero bool) {
	if s.Partial {
		return
	}
	slot := int((s.Start / a.bufWords) & (a.numBufs - 1))
	if zero {
		// The slot is quiescent between seal and release, so this is the
		// one race-free moment to scrub it.
		for i := range s.Words {
			s.Words[i] = 0
		}
	}
	atomic.StoreUint64(a.slotWord(slot, slotWCommitted), 0)
	atomic.StoreUint64(a.slotWord(slot, slotWState), slotFree)
}

// TakePending claims a sealed buffer for a polling consumer: it moves the
// slot from Pending to Draining and returns the Sealed view. This is how
// the shm daemon discovers seals — producers in other processes cannot
// call OnSeal in the daemon's address space, so the Pending state itself
// is the handoff. The CAS guarantees exactly-once pickup. Returns false
// if the slot is not pending.
func (a *Arena) TakePending(slot int) (Sealed, bool) {
	if !atomic.CompareAndSwapUint64(a.slotWord(slot, slotWState), slotPending, slotDraining) {
		return Sealed{}, false
	}
	start := atomic.LoadUint64(a.slotWord(slot, slotWStart))
	lo := start & a.indexMask
	return Sealed{
		CPU:       a.cpu,
		Seq:       start / a.bufWords,
		Start:     start,
		Words:     a.buf[lo : lo+a.bufWords],
		Committed: atomic.LoadUint64(a.slotWord(slot, slotWCommitted)),
	}, true
}

// TakeStuck seals a stuck buffer from the consumer side: one whose
// generation is fully reserved (the index moved past its end) but whose
// commit count stalled short because a writer was killed between reserve
// and commit. It is the daemon-side analogue of the writer-side reclaim —
// K42's trace daemon "reports an anomaly if they do not match" — and is
// only race-free when InflightTotal is zero: dead reservations never
// commit, and any logger starting later reserves in the current
// generation, so the stuck buffer's count is final. Callers must be the
// arena's only polling consumer (the state CAS then cannot ABA through a
// concurrent Release).
func (a *Arena) TakeStuck(slot int) (Sealed, bool) {
	st := a.slotWord(slot, slotWState)
	if atomic.LoadUint64(st) != slotInUse {
		return Sealed{}, false
	}
	start := atomic.LoadUint64(a.slotWord(slot, slotWStart))
	if start+a.bufWords > a.Index() {
		return Sealed{}, false // current generation; still filling
	}
	if a.InflightTotal() != 0 {
		return Sealed{}, false // a live logger may yet commit here
	}
	committed := atomic.LoadUint64(a.slotWord(slot, slotWCommitted))
	if committed >= a.bufWords {
		return Sealed{}, false // complete: its final commit sealed it
	}
	if !atomic.CompareAndSwapUint64(st, slotInUse, slotDraining) {
		return Sealed{}, false
	}
	a.statAdd(ctlStatSeals, 1)
	a.statAdd(ctlStatStuckSeals, 1)
	lo := start & a.indexMask
	return Sealed{
		CPU:       a.cpu,
		Seq:       start / a.bufWords,
		Start:     start,
		Words:     a.buf[lo : lo+a.bufWords],
		Committed: committed,
	}, true
}

// FlushSlots seals every buffer still holding unconsumed data: the
// partially filled current buffer (emitted Partial) and any stuck buffer
// whose count stalled short (emitted with its short count, so
// Anomalous() reports it). The arena must be quiescent — mask bits off,
// InflightTotal zero — or the emitted views would race live writers.
// Already-pending slots are not emitted; they were handed off at seal
// time (channel consumers) or will be picked up by TakePending (polling
// consumers) before the flush.
func (a *Arena) FlushSlots(emit func(Sealed)) {
	if !a.stream {
		return
	}
	idx := a.Index()
	if idx == 0 {
		return // never logged
	}
	off := idx & (a.bufWords - 1)
	curStart := idx - off
	for s := 0; s < int(a.numBufs); s++ {
		st := a.slotWord(s, slotWState)
		if atomic.LoadUint64(st) != slotInUse {
			continue
		}
		start := atomic.LoadUint64(a.slotWord(s, slotWStart))
		n := a.bufWords
		partial := false
		if start == curStart {
			if off == 0 {
				continue // boundary-exact: sealed by its last commit
			}
			n = off
			partial = true
		}
		lo := start & a.indexMask
		atomic.StoreUint64(st, slotPending)
		a.statAdd(ctlStatSeals, 1)
		emit(Sealed{
			CPU:       a.cpu,
			Seq:       start / a.bufWords,
			Start:     start,
			Words:     a.buf[lo : lo+n],
			Committed: atomic.LoadUint64(a.slotWord(s, slotWCommitted)),
			Partial:   partial,
		})
	}
}
