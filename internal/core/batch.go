package core

import (
	"sync/atomic"

	"k42trace/internal/event"
)

// A Batch is a per-logger sub-allocator over one arena: a single
// reservation CAS claims many events' worth of words up front, and the
// batch then hands out event slots with plain arithmetic — no atomic
// operation per event. The contended read-modify-write that dominates the
// hot path is paid once per batch instead of once per event, which is
// what pushes per-event cost toward the memory-copy floor.
//
// The protocol invariants survive unchanged because a batch is, from the
// arena's point of view, one long in-flight logging call:
//
//   - The whole extent is reserved by Arena.reserve, so it never crosses
//     a buffer (alignment) boundary and random access stays intact.
//   - The opener stays registered in-flight from OpenBatch to Close, so
//     quiescence waits (Quiesce, ApplyMask, the shm daemon's reap guard)
//     see the batch exactly as they would see a slow single event.
//   - Close pads the unused tail with filler events and then commits the
//     entire extent with one commit call, so word conservation holds: a
//     buffer's commit count still reaches its size exactly when every
//     reserved word was either logged or accounted as filler. If the
//     batch's words complete the buffer, that commit seals it — a batch
//     can straddle a seal — and a batch abandoned by a killed writer
//     leaves the familiar short count for stuck-buffer reclamation, with
//     the unwritten remainder decoding as a clean zero-filled hole.
//
// Every event in a batch carries the timestamp read when the batch was
// opened. Re-reading the clock per append would break per-CPU stream
// monotonicity: a concurrent logger that reserves *after* the batch
// (higher positions) could obtain an *earlier* stamp than a late append.
// Freezing the open stamp keeps position order and timestamp order
// aligned, at the cost of intra-batch timestamps being identical — the
// same trade the paper makes for events sharing a timer tick.
//
// A Batch is a single-logger object: it must not be used from two
// goroutines at once (the per-P fast path serializes access with a slot
// claim). Batches should be short-lived — an open batch defers Quiesce,
// ApplyMask, Stop and (for shm clients) Detach until it closes.
type Batch struct {
	a      *Arena
	base   uint64 // free-running index of the first reserved word
	next   uint64 // free-running index of the next unwritten word
	end    uint64 // free-running index one past the reservation
	ts     uint64 // open timestamp, shared by every event in the batch
	events uint64 // events appended since open
	open   bool
}

// OpenBatch reserves words trace-memory words into b with one CAS,
// closing any batch b already holds. The major gates the reservation the
// way an event's major gates a logging call: if its mask bit is off the
// batch does not open. Appends are still gated per-event, so one batch
// can carry mixed majors. Returns false with nothing reserved if tracing
// is off for the major, the reservation was dropped (full ring under the
// Drop policy, shutdown), or words cannot fit a buffer.
func (a *Arena) OpenBatch(b *Batch, major event.Major, words int) bool {
	if b.open {
		b.Close()
	}
	bit := major.Bit()
	if a.mask.Load()&bit == 0 {
		return false
	}
	if words <= 0 || uint64(words) > a.bufWords-anchorWords {
		a.statAdd(ctlStatTooLarge, 1)
		return false
	}
	// Same prologue as begin(): the in-flight registration must precede
	// the mask re-check so a concurrent Quiesce cannot miss us.
	atomic.AddUint64(a.inflight, 1)
	if a.mask.Load()&bit == 0 {
		atomic.AddUint64(a.inflight, ^uint64(0))
		return false
	}
	idx, ts, ok := a.reserve(bit, words)
	if !ok {
		atomic.AddUint64(a.inflight, ^uint64(0))
		return false
	}
	*b = Batch{a: a, base: idx, next: idx, end: idx + uint64(words), ts: ts, open: true}
	a.statAdd(ctlStatBatchOpens, 1)
	return true
}

// Close fills the batch's unused tail with filler events, commits the
// whole extent in one commit call (sealing the buffer if this completes
// it), flushes the batch's event counters into the shared statistics, and
// deregisters the opener from the in-flight count. Closing a closed batch
// is a no-op, so deferring Close is always safe.
func (b *Batch) Close() {
	if !b.open {
		return
	}
	a := b.a
	if tail := b.end - b.next; tail > 0 {
		a.writeFiller(b.next, tail, uint32(b.ts))
	}
	a.commit(b.base, b.end-b.base)
	if b.events > 0 {
		a.statAdd(ctlStatEvents, b.events)
		a.statAdd(ctlStatWords, b.next-b.base)
		a.statAdd(ctlStatFastHits, b.events)
	}
	b.open = false
	a.end()
}

// Open reports whether the batch currently holds a reservation.
func (b *Batch) Open() bool { return b.open }

// Remaining returns the unwritten words left in the reservation.
func (b *Batch) Remaining() int {
	if !b.open {
		return 0
	}
	return int(b.end - b.next)
}

// Events returns the number of events appended since the batch opened.
func (b *Batch) Events() int { return int(b.events) }

// slot claims length words of the reservation, returning the buffer
// position of the first. The capacity check is the entire allocation —
// this is the plain-arithmetic path the batch exists for.
func (b *Batch) slot(length uint64) (pos uint64, ok bool) {
	if !b.open || b.next+length > b.end {
		return 0, false
	}
	pos = b.next & b.a.indexMask
	b.next += length
	b.events++
	return pos, true
}

// Log0 appends an event with no payload. False means the batch is closed,
// full, or the major is masked off: fall back to Close + OpenBatch or to
// the arena's own Log0.
func (b *Batch) Log0(major event.Major, minor uint16) bool {
	if !b.open || b.a.mask.Load()&major.Bit() == 0 {
		return false
	}
	p, ok := b.slot(1)
	if !ok {
		return false
	}
	b.a.buf[p] = uint64(event.MakeHeader(uint32(b.ts), 1, major, minor))
	return true
}

// Log1 appends an event with one 64-bit payload word.
func (b *Batch) Log1(major event.Major, minor uint16, d0 uint64) bool {
	if !b.open || b.a.mask.Load()&major.Bit() == 0 {
		return false
	}
	p, ok := b.slot(2)
	if !ok {
		return false
	}
	b.a.buf[p] = uint64(event.MakeHeader(uint32(b.ts), 2, major, minor))
	b.a.buf[p+1] = d0
	return true
}

// Log2 appends an event with two 64-bit payload words.
func (b *Batch) Log2(major event.Major, minor uint16, d0, d1 uint64) bool {
	if !b.open || b.a.mask.Load()&major.Bit() == 0 {
		return false
	}
	p, ok := b.slot(3)
	if !ok {
		return false
	}
	b.a.buf[p] = uint64(event.MakeHeader(uint32(b.ts), 3, major, minor))
	b.a.buf[p+1] = d0
	b.a.buf[p+2] = d1
	return true
}

// Log3 appends an event with three 64-bit payload words.
func (b *Batch) Log3(major event.Major, minor uint16, d0, d1, d2 uint64) bool {
	if !b.open || b.a.mask.Load()&major.Bit() == 0 {
		return false
	}
	p, ok := b.slot(4)
	if !ok {
		return false
	}
	b.a.buf[p] = uint64(event.MakeHeader(uint32(b.ts), 4, major, minor))
	b.a.buf[p+1] = d0
	b.a.buf[p+2] = d1
	b.a.buf[p+3] = d2
	return true
}

// Log4 appends an event with four 64-bit payload words.
func (b *Batch) Log4(major event.Major, minor uint16, d0, d1, d2, d3 uint64) bool {
	if !b.open || b.a.mask.Load()&major.Bit() == 0 {
		return false
	}
	p, ok := b.slot(5)
	if !ok {
		return false
	}
	b.a.buf[p] = uint64(event.MakeHeader(uint32(b.ts), 5, major, minor))
	b.a.buf[p+1] = d0
	b.a.buf[p+2] = d1
	b.a.buf[p+3] = d2
	b.a.buf[p+4] = d3
	return true
}

// LogWords appends an event whose payload is the given word slice.
func (b *Batch) LogWords(major event.Major, minor uint16, data []uint64) bool {
	if !b.open || b.a.mask.Load()&major.Bit() == 0 {
		return false
	}
	length := uint64(1 + len(data))
	if length > event.MaxWords {
		b.a.statAdd(ctlStatTooLarge, 1)
		return false
	}
	p, ok := b.slot(length)
	if !ok {
		return false
	}
	b.a.buf[p] = uint64(event.MakeHeader(uint32(b.ts), int(length), major, minor))
	copy(b.a.buf[p+1:p+length], data)
	return true
}

// OpenBatch opens a batch on the handle's CPU slot; see Arena.OpenBatch.
func (c CPU) OpenBatch(b *Batch, major event.Major, words int) bool {
	return c.ctl.a.OpenBatch(b, major, words)
}
