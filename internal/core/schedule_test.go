package core

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"k42trace/internal/clock"
	"k42trace/internal/event"
)

// This file drives the reserve/commit/stuck-slot-reclaim machinery through
// scripted, fully deterministic interleavings. Writers are real goroutines
// (so the race detector sees the actual cross-goroutine handoffs), but the
// driver admits exactly one operation at a time, so every schedule decides
// precisely which writer reserves, which one is "killed" between reserve
// and commit (ReserveOnly), and which one wraps around onto the stuck slot
// and must reclaim it. Geometry is pinned small — BufWords 16, NumBufs 2,
// manual clock, 2-word Log1 units — so each schedule's seal sequence,
// commit counts, and StuckSeals totals can be written out by hand.
//
// ZeroFill is on: a killed reservation decodes as a clean hole (skipped
// zero words), so event recovery can be asserted exactly — every committed
// tag recovered once, no phantom events from the hole.

type schedAction int

const (
	actLog schedAction = iota
	// actKill reserves space and never commits it — the paper's §3.1
	// killed-mid-log failure, injected via ReserveOnly.
	actKill
	// actReclaimLog is a log that must wrap onto a stuck slot: the driver
	// waits for the anomalous seal the writer produces by reclaiming,
	// releases it, and only then waits for the log itself to finish.
	actReclaimLog
)

const killMinor = 99

type schedStep struct {
	w    int
	act  schedAction
	kill int // payload words for actKill (reservation is 1+kill words)
}

type writerOp struct {
	act  schedAction
	tag  uint64
	kill int
}

// sealRec is the comparable part of a Sealed value.
type sealRec struct {
	CPU       int
	Seq       uint64
	Committed uint64
	N         int
	Anomalous bool
	Partial   bool
}

func sLog(w int) schedStep           { return schedStep{w: w, act: actLog} }
func sKill(w, payload int) schedStep { return schedStep{w: w, act: actKill, kill: payload} }
func sReclaim(w int) schedStep       { return schedStep{w: w, act: actReclaimLog} }

func logsOn(w, n int) []schedStep {
	s := make([]schedStep, n)
	for i := range s {
		s[i] = sLog(w)
	}
	return s
}

func cat(groups ...[]schedStep) []schedStep {
	var out []schedStep
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

func one(s schedStep) []schedStep { return []schedStep{s} }

// TestScheduledReclaim runs the schedule table. Buffer geometry used by
// every expectation below: a 16-word buffer holds a 2-word clock anchor
// plus seven 2-word Log1 units; a kill with payload 1 leaves a 2-word
// uncommitted hole, payload 3 a 4-word hole. A buffer whose commit count
// stalls short never seals on its own; the next writer to wrap onto its
// slot seals it anomalous (StuckSeals) and the driver, acting as the
// consumer, releases it.
func TestScheduledReclaim(t *testing.T) {
	schedules := []struct {
		name    string
		writers int
		nCPUs   int   // tracer CPU slots; 0 means 1
		cpus    []int // writer → CPU slot; nil = all on CPU 0
		steps   []schedStep
		stuck   uint64
		skipped int // total zero-hole words the decoders must skip
		seals   []sealRec
		check   func(t *testing.T, tr *Tracer)
	}{
		{
			// Kill in the middle of buffer 0; buffer 1 fills and seals
			// normally first; the wrap-around log reclaims buffer 0.
			name: "kill-mid-buffer", writers: 1,
			steps: cat(logsOn(0, 3), one(sKill(0, 1)), logsOn(0, 3),
				logsOn(0, 7), one(sReclaim(0))),
			stuck: 1, skipped: 2,
			seals: []sealRec{
				{Seq: 1, Committed: 16, N: 16},
				{Seq: 0, Committed: 14, N: 16, Anomalous: true},
				{Seq: 2, Committed: 4, N: 4, Partial: true},
			},
		},
		{
			// The very first reservation is killed: the transition winner
			// commits the anchor, then vanishes. The hole sits right after
			// the anchor.
			name: "kill-first-event", writers: 1,
			steps: cat(one(sKill(0, 1)), logsOn(0, 6),
				logsOn(0, 7), one(sReclaim(0))),
			stuck: 1, skipped: 2,
			seals: []sealRec{
				{Seq: 1, Committed: 16, N: 16},
				{Seq: 0, Committed: 14, N: 16, Anomalous: true},
				{Seq: 2, Committed: 4, N: 4, Partial: true},
			},
		},
		{
			// Kill takes the last unit of buffer 0, so the reservation index
			// reaches the boundary but the commit count never does.
			name: "kill-buffer-tail", writers: 1,
			steps: cat(logsOn(0, 6), one(sKill(0, 1)),
				logsOn(0, 7), one(sReclaim(0))),
			stuck: 1, skipped: 2,
			seals: []sealRec{
				{Seq: 1, Committed: 16, N: 16},
				{Seq: 0, Committed: 14, N: 16, Anomalous: true},
				{Seq: 2, Committed: 4, N: 4, Partial: true},
			},
		},
		{
			// A wider (4-word) reservation is killed; the commit deficit and
			// the decoded hole grow to match.
			name: "wide-kill", writers: 1,
			steps: cat(logsOn(0, 1), one(sKill(0, 3)), logsOn(0, 4),
				logsOn(0, 7), one(sReclaim(0))),
			stuck: 1, skipped: 4,
			seals: []sealRec{
				{Seq: 1, Committed: 16, N: 16},
				{Seq: 0, Committed: 12, N: 16, Anomalous: true},
				{Seq: 2, Committed: 4, N: 4, Partial: true},
			},
		},
		{
			// Two independent kills in one buffer: a single reclaim covers
			// both holes (one stuck seal, commit deficit of 4).
			name: "two-kills-one-buffer", writers: 1,
			steps: cat(one(sLog(0)), one(sKill(0, 1)), one(sLog(0)),
				one(sKill(0, 1)), logsOn(0, 3),
				logsOn(0, 7), one(sReclaim(0))),
			stuck: 1, skipped: 4,
			seals: []sealRec{
				{Seq: 1, Committed: 16, N: 16},
				{Seq: 0, Committed: 12, N: 16, Anomalous: true},
				{Seq: 2, Committed: 4, N: 4, Partial: true},
			},
		},
		{
			// Both ring slots go stuck back to back; each wrap-around must
			// perform its own reclamation.
			name: "kills-in-consecutive-buffers", writers: 1,
			steps: cat(logsOn(0, 6), one(sKill(0, 1)),
				logsOn(0, 6), one(sKill(0, 1)),
				one(sReclaim(0)), logsOn(0, 6), one(sReclaim(0))),
			stuck: 2, skipped: 4,
			seals: []sealRec{
				{Seq: 0, Committed: 14, N: 16, Anomalous: true},
				{Seq: 2, Committed: 16, N: 16},
				{Seq: 1, Committed: 14, N: 16, Anomalous: true},
				{Seq: 3, Committed: 4, N: 4, Partial: true},
			},
		},
		{
			// Three writers interleave on one CPU slot; writer 1 is killed
			// mid-buffer and writer 0 later reclaims. Commit counts are a
			// shared per-buffer total, not per-writer.
			name: "three-writers-one-killed", writers: 3,
			steps: cat(one(sLog(0)), one(sLog(1)), one(sLog(2)),
				one(sKill(1, 1)),
				one(sLog(2)), one(sLog(0)), one(sLog(1)),
				one(sLog(2)), one(sLog(0)), one(sLog(1)), one(sLog(2)),
				one(sLog(0)), one(sLog(1)), one(sLog(2)),
				one(sReclaim(0))),
			stuck: 1, skipped: 2,
			seals: []sealRec{
				{Seq: 1, Committed: 16, N: 16},
				{Seq: 0, Committed: 14, N: 16, Anomalous: true},
				{Seq: 2, Committed: 4, N: 4, Partial: true},
			},
		},
		{
			// A kill and its reclamation on CPU 0 must not perturb CPU 1:
			// no stuck seals, no block-waits, no CAS retries there.
			name: "cross-cpu-independence", writers: 2, nCPUs: 2,
			cpus: []int{0, 1},
			steps: cat(one(sLog(0)), one(sLog(1)), logsOn(0, 5),
				one(sKill(0, 1)), one(sLog(1)),
				logsOn(0, 7), one(sReclaim(0)), one(sLog(1))),
			stuck: 1, skipped: 2,
			seals: []sealRec{
				{CPU: 0, Seq: 1, Committed: 16, N: 16},
				{CPU: 0, Seq: 0, Committed: 14, N: 16, Anomalous: true},
				{CPU: 0, Seq: 2, Committed: 4, N: 4, Partial: true},
				{CPU: 1, Seq: 0, Committed: 8, N: 8, Partial: true},
			},
			check: func(t *testing.T, tr *Tracer) {
				if n := tr.CPUStats(0).StuckSeals; n != 1 {
					t.Errorf("cpu 0 StuckSeals = %d, want 1", n)
				}
				if n := tr.CPUStats(1).StuckSeals; n != 0 {
					t.Errorf("cpu 1 StuckSeals = %d, want 0", n)
				}
				if n := tr.CPUStats(1).BlockWaits; n != 0 {
					t.Errorf("cpu 1 BlockWaits = %d; reclaim leaked across CPUs", n)
				}
				if n := tr.CPUStats(1).Retries; n != 0 {
					t.Errorf("cpu 1 Retries = %d; slots are not independent", n)
				}
			},
		},
	}

	for _, sc := range schedules {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			nCPUs := sc.nCPUs
			if nCPUs == 0 {
				nCPUs = 1
			}
			tr := MustNew(Config{CPUs: nCPUs, BufWords: 16, NumBufs: 2,
				Mode: Stream, Clock: clock.NewManual(1), ZeroFill: true})
			tr.EnableAll()

			ops := make([]chan writerOp, sc.writers)
			done := make([]chan bool, sc.writers)
			for w := 0; w < sc.writers; w++ {
				ops[w] = make(chan writerOp)
				done[w] = make(chan bool, 1)
				cpu := 0
				if sc.cpus != nil {
					cpu = sc.cpus[w]
				}
				go func(c CPU, ops <-chan writerOp, done chan<- bool) {
					for op := range ops {
						switch op.act {
						case actKill:
							done <- c.ReserveOnly(event.MajorTest, killMinor, op.kill)
						default:
							done <- c.Log1(event.MajorTest, 1, op.tag)
						}
					}
				}(tr.CPU(cpu), ops[w], done[w])
			}

			var (
				got   []sealRec
				words [][]uint64
			)
			record := func(s Sealed) {
				w := make([]uint64, len(s.Words))
				copy(w, s.Words)
				got = append(got, sealRec{CPU: s.CPU, Seq: s.Seq,
					Committed: s.Committed, N: len(s.Words),
					Anomalous: s.Anomalous(), Partial: s.Partial})
				words = append(words, w)
				tr.Release(s)
			}
			drain := func() {
				for {
					select {
					case s := <-tr.Sealed():
						record(s)
					default:
						return
					}
				}
			}

			var wantTags []uint64
			for i, st := range sc.steps {
				tag := uint64(i+1)<<8 | uint64(st.w)
				ops[st.w] <- writerOp{act: st.act, tag: tag, kill: st.kill}
				if st.act == actReclaimLog {
					select {
					case s := <-tr.Sealed():
						if !s.Anomalous() {
							t.Fatalf("step %d: expected the stuck seal first, got committed %d/%d",
								i, s.Committed, len(s.Words))
						}
						record(s)
					case ok := <-done[st.w]:
						t.Fatalf("step %d: reclaim step finished (ok=%v) without sealing a stuck buffer", i, ok)
					case <-time.After(10 * time.Second):
						t.Fatalf("step %d: stuck-slot reclaim never happened", i)
					}
				}
				select {
				case ok := <-done[st.w]:
					if !ok {
						t.Fatalf("step %d: writer %d operation failed", i, st.w)
					}
				case <-time.After(10 * time.Second):
					t.Fatalf("step %d: writer %d never finished", i, st.w)
				}
				if st.act != actKill {
					wantTags = append(wantTags, tag)
				}
				drain()
			}
			for _, ch := range ops {
				close(ch)
			}
			tr.Stop()
			for s := range tr.Sealed() {
				record(s)
			}

			if !reflect.DeepEqual(got, sc.seals) {
				t.Errorf("seal sequence mismatch:\n got  %+v\n want %+v", got, sc.seals)
			}
			st := tr.Stats()
			if st.StuckSeals != sc.stuck {
				t.Errorf("StuckSeals = %d, want %d", st.StuckSeals, sc.stuck)
			}
			if st.Dropped != 0 {
				t.Errorf("Dropped = %d, want 0 (Block policy must be lossless)", st.Dropped)
			}
			if st.Events != uint64(len(wantTags)) {
				t.Errorf("Events = %d, want %d (killed reservations must not count)",
					st.Events, len(wantTags))
			}

			// Recovery: every committed tag exactly once, killed holes
			// decode as skipped zero words, and a seal is garbled iff its
			// commit count said so.
			seen := make(map[uint64]bool)
			skipped := 0
			for i, rec := range got {
				evs, ds := DecodeBuffer(rec.CPU, words[i])
				skipped += ds.SkippedWords
				if ds.Garbled() != rec.Anomalous {
					t.Errorf("seal %d (%+v): decode garbled=%v, commit count says %v",
						i, rec, ds.Garbled(), rec.Anomalous)
				}
				for _, e := range evs {
					if e.Major() != event.MajorTest || e.Minor() != 1 {
						continue
					}
					tag := e.Data[0]
					if seen[tag] {
						t.Errorf("tag %#x recovered twice", tag)
					}
					seen[tag] = true
				}
			}
			if skipped != sc.skipped {
				t.Errorf("decoders skipped %d words, want %d", skipped, sc.skipped)
			}
			for _, tag := range wantTags {
				if !seen[tag] {
					t.Errorf("logged tag %#x not recovered", tag)
				}
			}
			if len(seen) != len(wantTags) {
				t.Errorf("recovered %d tags, want %d (a killed reservation must stay a hole)",
					len(seen), len(wantTags))
			}
			if sc.check != nil {
				sc.check(t, tr)
			}
		})
	}
}

// TestReclaimRequiresSoleInflight pins the reclaim precondition: a writer
// blocked on a stuck slot may only seal it when no other logger on the CPU
// is in flight (the stuck buffer's commit count must be final). The
// schedule parks writer B inside its timestamp read — reserved state, no
// commit yet — and shows that writer A, wrapping onto the stuck slot,
// spins (BlockWaits) without reclaiming; alone again, the next writer
// reclaims immediately.
func TestReclaimRequiresSoleInflight(t *testing.T) {
	// Clock-read ledger for the prelude (2-word Log1 units, 16-word
	// buffers, reads counted across fast and slow paths):
	//   #1     log   slow path: anchor + event open buffer 0
	//   #2     kill  ReserveOnly leaves a 2-word hole; buffer 0 will stick
	//   #3-7   log ×5  buffer 0 reaches its boundary, committed 14/16
	//   #8     log   slow path into buffer 1
	//   #9-13  log ×5  buffer 1 one unit short of full
	//   #14    B's log — gated here: in flight, pre-CAS
	//   #15    A's log fills buffer 1 (normal seal)
	g := newGateClock(14)
	tr := MustNew(Config{CPUs: 1, BufWords: 16, NumBufs: 2, Mode: Stream,
		Clock: g, ZeroFill: true})
	tr.EnableAll()
	c := tr.CPU(0)
	mustLog := func(tag uint64) {
		t.Helper()
		if !c.Log1(event.MajorTest, 1, tag) {
			t.Fatalf("log %d failed", tag)
		}
	}
	mustLog(1)
	if !c.ReserveOnly(event.MajorTest, killMinor, 1) {
		t.Fatal("ReserveOnly failed")
	}
	for i := uint64(2); i <= 12; i++ {
		mustLog(i)
	}

	bres := make(chan bool, 1)
	go func() { bres <- c.Log1(event.MajorTest, 1, 100) }()
	<-g.blocked // B is parked inside its timestamp read: in flight

	mustLog(13) // fills buffer 1
	s := <-tr.Sealed()
	if s.Anomalous() || s.Committed != 16 {
		t.Fatalf("buffer 1 seal: committed %d/%d", s.Committed, len(s.Words))
	}
	tr.Release(s)

	ares := make(chan bool, 1)
	go func() { ares <- c.Log1(event.MajorTest, 1, 101) }()

	// A wraps onto stuck slot 0 but must not reclaim: B is still in
	// flight, so the stuck commit count is not yet final.
	deadline := time.Now().Add(10 * time.Second)
	for tr.Stats().BlockWaits < 5 {
		if time.Now().After(deadline) {
			t.Fatal("writer A never reached the block-wait loop")
		}
		runtime.Gosched()
	}
	if n := tr.Stats().StuckSeals; n != 0 {
		t.Fatalf("reclaimed with another logger in flight: StuckSeals = %d", n)
	}

	// Disabling tracing is the sanctioned way out: both writers bail via
	// the mask re-check instead of spinning forever.
	tr.Disable(event.MajorTest)
	if <-ares {
		t.Error("blocked log succeeded after tracing was disabled")
	}
	close(g.gate)
	if <-bres {
		t.Error("gated log succeeded after tracing was disabled")
	}
	if d := tr.Stats().Dropped; d != 2 {
		t.Errorf("Dropped = %d, want 2", d)
	}
	if n := tr.Stats().StuckSeals; n != 0 {
		t.Fatalf("StuckSeals = %d after bail-out, want 0", n)
	}

	// Alone again, the next writer reclaims the stuck slot on its first
	// wrap-around attempt.
	tr.Enable(event.MajorTest)
	released := make(chan struct{})
	go func() {
		s := <-tr.Sealed()
		if !s.Anomalous() || s.Committed != 14 {
			t.Errorf("stuck seal: committed %d/%d, anomalous=%v",
				s.Committed, len(s.Words), s.Anomalous())
		}
		tr.Release(s)
		close(released)
	}()
	mustLog(14)
	<-released
	if n := tr.Stats().StuckSeals; n != 1 {
		t.Errorf("StuckSeals = %d, want 1", n)
	}
	tr.Stop()
	for s := range tr.Sealed() {
		tr.Release(s)
	}
}
