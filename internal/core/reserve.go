package core

import (
	"sync/atomic"

	"k42trace/internal/event"
)

// slowResult is the outcome of one slow-path attempt.
type slowResult int

const (
	slowWon     slowResult = iota // space reserved; caller may log
	slowRetry                     // lost a race or waiting; re-run the loop
	slowDropped                   // event dropped (Drop policy or shutdown)
)

// reserve implements traceReserve from Figure 2 of the paper. It reserves
// length words (header included) in this arena's trace memory and returns
// the free-running start index and the timestamp to put in the header.
//
// The timestamp is (re-)read inside the retry loop, immediately before the
// compare-and-swap: "it is important to guarantee monotonically increasing
// timestamps [so] processes must re-determine the timestamp during each
// attempt to atomically increment the index." A successful CAS therefore
// orders the timestamp read after the previous winner's CAS, making each
// CPU's stream monotone — across goroutines and, when the arena words are
// a shared mapping, across processes.
func (a *Arena) reserve(bit uint64, length int) (idx uint64, ts uint64, ok bool) {
	bw := a.bufWords
	if a.staleTS {
		// Ablation: the bug the paper warns against — one read before the
		// loop. A process that loses the CAS and retries keeps its stale
		// timestamp, so a competitor can take an earlier slot with a later
		// stamp (or vice versa), breaking per-stream monotonicity.
		ts = a.clk.Now(a.cpu)
	}
	for {
		old := a.Index()
		off := old & (bw - 1)
		if off == 0 || off+uint64(length) > bw {
			i, s, res := a.reserveSlow(bit, old, length)
			switch res {
			case slowWon:
				return i, s, true
			case slowDropped:
				return 0, 0, false
			}
			continue // slowRetry
		}
		if !a.staleTS {
			ts = a.clk.Now(a.cpu)
		}
		if atomic.CompareAndSwapUint64(&a.ctl[ctlIndex], old, old+uint64(length)) {
			if (old+uint64(length))&(bw-1) == 0 {
				a.statAdd(ctlStatExactFit, 1)
			}
			return old, ts, true
		}
		a.statAdd(ctlStatRetries, 1)
	}
}

// reserveSlow handles reservations that start a new buffer: when the
// reservation would cross the alignment boundary (a filler event pads the
// remainder) or when the index sits exactly on a boundary (a fresh buffer
// is being entered). The winner of the CAS becomes the transition owner:
// it writes the filler, claims the next buffer slot, logs the clock-anchor
// event that begins every buffer, and returns the space for the caller's
// own event just after the anchor.
func (a *Arena) reserveSlow(bit uint64, old uint64, length int) (uint64, uint64, slowResult) {
	bw := a.bufWords
	off := old & (bw - 1)
	boundary := old
	if off != 0 {
		boundary = old + bw - off
	}
	fill := boundary - old
	target := boundary + anchorWords + uint64(length)

	newSlot := int((boundary / bw) & (a.numBufs - 1))
	if a.stream && a.SlotState(newSlot) != slotFree {
		// The consumer has not released this buffer yet.
		if a.onFull == nil { // Drop policy
			a.statAdd(ctlStatDropped, 1)
			return 0, 0, slowDropped
		}
		if a.mask.Load()&bit == 0 {
			// Tracing was disabled (or the tracer stopped) while we
			// waited; bail out rather than blocking shutdown.
			a.statAdd(ctlStatDropped, 1)
			return 0, 0, slowDropped
		}
		if a.reclaimStuck(newSlot, boundary) {
			return 0, 0, slowRetry // slot sealed anomalous; try again
		}
		a.statAdd(ctlStatBlockWaits, 1)
		if !a.onFull() {
			a.statAdd(ctlStatDropped, 1)
			return 0, 0, slowDropped
		}
		return 0, 0, slowRetry
	}

	ts := a.clk.Now(a.cpu)
	if !atomic.CompareAndSwapUint64(&a.ctl[ctlIndex], old, target) {
		a.statAdd(ctlStatRetries, 1)
		return 0, 0, slowRetry
	}

	// We are the unique transition winner for this boundary.
	atomic.StoreUint64(a.slotWord(newSlot, slotWState), slotInUse)
	atomic.StoreUint64(a.slotWord(newSlot, slotWStart), boundary)
	if !a.stream {
		// Flight recorder: recycle the slot's accounting for the new
		// generation. (In Stream mode the consumer's Release resets it
		// while the slot is quiescent.)
		atomic.StoreUint64(a.slotWord(newSlot, slotWCommitted), 0)
	}
	if fill > 0 {
		a.writeFiller(old, fill, uint32(ts))
		a.commit(old, fill)
	}
	pos := boundary & a.indexMask
	a.buf[pos] = uint64(event.MakeHeader(uint32(ts), anchorWords,
		event.MajorControl, event.CtrlClockAnchor))
	a.buf[pos+1] = ts
	a.statAdd(ctlStatAnchors, 1)
	a.commit(boundary, anchorWords)
	if target&(bw-1) == 0 {
		a.statAdd(ctlStatExactFit, 1)
	}
	return boundary + anchorWords, ts, slowWon
}

// reclaimStuck seals a stuck buffer: one whose commit count stalled short
// of the buffer size because a writer reserved space and was then killed
// before logging — §3.1's failure mode. The normal seal happens at the
// buffer's last commit, which for such a buffer never arrives; without
// reclamation the slot would never reach the consumer and the ring would
// wedge as soon as writers wrapped back around to it. Real write-out
// (K42's trace daemon) ships buffers on buffer-switch regardless and
// "reports an anomaly if they do not match"; this is that write-out,
// deferred to the moment a writer actually needs the slot back.
//
// Reclaiming is only race-free when no other logger on this arena is in
// flight: commits happen only inside in-flight logging calls, so with the
// caller alone (InflightTotal == 1, counting itself) the stuck buffer's
// commit count is final and the consumer may read its words. The state
// CAS makes the seal unique against the buffer completing concurrently
// after all, and against a polling consumer's TakeStuck.
func (a *Arena) reclaimStuck(slot int, boundary uint64) bool {
	if a.InflightTotal() != 1 {
		return false
	}
	start := a.SlotStart(slot)
	if start >= boundary {
		return false // current generation; not ours to seal
	}
	committed := a.SlotCommitted(slot)
	if committed >= a.bufWords {
		return false // fully committed: its last commit seals it
	}
	if !atomic.CompareAndSwapUint64(a.slotWord(slot, slotWState), slotInUse, slotPending) {
		return false
	}
	a.statAdd(ctlStatSeals, 1)
	a.statAdd(ctlStatStuckSeals, 1)
	if a.onSeal != nil {
		lo := start & a.indexMask
		a.onSeal(Sealed{
			CPU:       a.cpu,
			Seq:       start / a.bufWords,
			Start:     start,
			Words:     a.buf[lo : lo+a.bufWords],
			Committed: committed,
		})
	}
	return true
}

// writeFiller pads [from, from+n) with filler events: bare headers whose
// length covers the padded words ("a filler event is just a header with a
// length equal to the remainder of the current buffer; no data need be
// logged"). Remainders larger than the maximum event length chain multiple
// fillers.
func (a *Arena) writeFiller(from, n uint64, ts32 uint32) {
	mask := a.indexMask
	a.statAdd(ctlStatFillerWords, n)
	for n > 0 {
		l := n
		if l > event.MaxWords {
			l = event.MaxWords
		}
		a.buf[from&mask] = uint64(event.MakeHeader(ts32, int(l),
			event.MajorControl, event.CtrlFiller))
		a.statAdd(ctlStatFillerEvents, 1)
		from += l
		n -= l
	}
}

// commit is traceCommit: it adds words to the per-buffer count of data
// actually logged. When the count reaches the buffer size the buffer is
// complete; in Stream mode the committer that completes it seals it and
// hands it to the consumer (or, with no OnSeal hook, leaves it Pending for
// a polling consumer). A buffer whose count never reaches its size had a
// writer that reserved space but never finished logging — the anomaly the
// per-buffer counts exist to detect.
func (a *Arena) commit(idx uint64, words uint64) {
	slot := int((idx / a.bufWords) & (a.numBufs - 1))
	c := atomic.AddUint64(a.slotWord(slot, slotWCommitted), words)
	if c == a.bufWords && a.stream {
		atomic.StoreUint64(a.slotWord(slot, slotWState), slotPending)
		a.statAdd(ctlStatSeals, 1)
		if a.onSeal != nil {
			start := a.SlotStart(slot)
			lo := start & a.indexMask
			a.onSeal(Sealed{
				CPU:       a.cpu,
				Seq:       start / a.bufWords,
				Start:     start,
				Words:     a.buf[lo : lo+a.bufWords],
				Committed: a.bufWords,
			})
		}
	}
}

// begin is the common prologue of every logging call: it registers the
// logger as in-flight (so flight-recorder dumps can drain to quiescence),
// re-checks the mask, and reserves space.
//
// The mask is loaded twice per enabled event — once in the entry point,
// once here — and both loads are necessary; neither is the redundancy it
// looks like. The entry-point check keeps the *disabled* path to a single
// load+branch (the paper's "single comparison against a trace mask"
// cost); doing the inflight add first would put two atomic RMWs on every
// disabled trace point. The re-load here, *after* the inflight add, closes
// the race with Quiesce: the drain observes inflight==0 only after our
// add, and mask.Swap(0) happened before the drain began, so any logger
// that slipped past the entry check while tracing was being disabled is
// guaranteed to see the zero mask here and back out. Dropping this
// re-check would let such a logger write into buffers the dumper believes
// are quiescent. (What *was* redundant here — a per-call length check
// that is statically dead for the fixed-arity Log0..Log4, whose lengths
// of 1..5 words always fit the BufWords >= 16 / MaxWords = 1023 floors —
// now lives only in the variable-length entry points.)
func (a *Arena) begin(bit uint64, length int) (idx uint64, ts uint64, ok bool) {
	atomic.AddUint64(a.inflight, 1)
	if a.mask.Load()&bit == 0 {
		atomic.AddUint64(a.inflight, ^uint64(0))
		return 0, 0, false
	}
	idx, ts, ok = a.reserve(bit, length)
	if !ok {
		atomic.AddUint64(a.inflight, ^uint64(0))
	}
	return idx, ts, ok
}

// fits reports whether an event of the given total length (header
// included) can ever be logged: it must leave room for the buffer's
// leading clock anchor and be encodable in the header's length field.
// Callers with a constant length <= 5 (Log0..Log4) need not ask.
func (a *Arena) fits(length int) bool {
	if uint64(length) > a.bufWords-anchorWords || length > event.MaxWords {
		a.statAdd(ctlStatTooLarge, 1)
		return false
	}
	return true
}

// end is the epilogue: the logger is no longer in flight.
func (a *Arena) end() { atomic.AddUint64(a.inflight, ^uint64(0)) }

// Enabled reports whether events of the major class are currently logged.
func (a *Arena) Enabled(m event.Major) bool { return a.mask.Load()&m.Bit() != 0 }

// --- Logging entry points ---------------------------------------------------
//
// Log0..Log4 are the analogue of K42's per-major-ID macros: "events with a
// constant number of data words [are] logged efficiently, without the use
// of variable argument functions." LogWords is the generic function used
// for non-constant-length data.

// Log0 logs an event with no payload. It reports whether the event was
// logged (false: tracing disabled for the major, event dropped, or too
// large).
func (a *Arena) Log0(major event.Major, minor uint16) bool {
	bit := major.Bit()
	if a.mask.Load()&bit == 0 {
		return false
	}
	idx, ts, ok := a.begin(bit, 1)
	if !ok {
		return false
	}
	a.buf[idx&a.indexMask] = uint64(event.MakeHeader(uint32(ts), 1, major, minor))
	a.commit(idx, 1)
	a.statAdd(ctlStatEvents, 1)
	a.statAdd(ctlStatWords, 1)
	a.end()
	return true
}

// Log1 logs an event with one 64-bit payload word.
func (a *Arena) Log1(major event.Major, minor uint16, d0 uint64) bool {
	bit := major.Bit()
	if a.mask.Load()&bit == 0 {
		return false
	}
	idx, ts, ok := a.begin(bit, 2)
	if !ok {
		return false
	}
	p := idx & a.indexMask
	a.buf[p] = uint64(event.MakeHeader(uint32(ts), 2, major, minor))
	a.buf[p+1] = d0
	a.commit(idx, 2)
	a.statAdd(ctlStatEvents, 1)
	a.statAdd(ctlStatWords, 2)
	a.end()
	return true
}

// Log2 logs an event with two 64-bit payload words.
func (a *Arena) Log2(major event.Major, minor uint16, d0, d1 uint64) bool {
	bit := major.Bit()
	if a.mask.Load()&bit == 0 {
		return false
	}
	idx, ts, ok := a.begin(bit, 3)
	if !ok {
		return false
	}
	p := idx & a.indexMask
	a.buf[p] = uint64(event.MakeHeader(uint32(ts), 3, major, minor))
	a.buf[p+1] = d0
	a.buf[p+2] = d1
	a.commit(idx, 3)
	a.statAdd(ctlStatEvents, 1)
	a.statAdd(ctlStatWords, 3)
	a.end()
	return true
}

// Log3 logs an event with three 64-bit payload words.
func (a *Arena) Log3(major event.Major, minor uint16, d0, d1, d2 uint64) bool {
	bit := major.Bit()
	if a.mask.Load()&bit == 0 {
		return false
	}
	idx, ts, ok := a.begin(bit, 4)
	if !ok {
		return false
	}
	p := idx & a.indexMask
	a.buf[p] = uint64(event.MakeHeader(uint32(ts), 4, major, minor))
	a.buf[p+1] = d0
	a.buf[p+2] = d1
	a.buf[p+3] = d2
	a.commit(idx, 4)
	a.statAdd(ctlStatEvents, 1)
	a.statAdd(ctlStatWords, 4)
	a.end()
	return true
}

// Log4 logs an event with four 64-bit payload words.
func (a *Arena) Log4(major event.Major, minor uint16, d0, d1, d2, d3 uint64) bool {
	bit := major.Bit()
	if a.mask.Load()&bit == 0 {
		return false
	}
	idx, ts, ok := a.begin(bit, 5)
	if !ok {
		return false
	}
	p := idx & a.indexMask
	a.buf[p] = uint64(event.MakeHeader(uint32(ts), 5, major, minor))
	a.buf[p+1] = d0
	a.buf[p+2] = d1
	a.buf[p+3] = d2
	a.buf[p+4] = d3
	a.commit(idx, 5)
	a.statAdd(ctlStatEvents, 1)
	a.statAdd(ctlStatWords, 5)
	a.end()
	return true
}

// LogWords logs an event whose payload is the given word slice. Use
// event.Pack to build payloads containing packed sub-word fields or
// strings.
func (a *Arena) LogWords(major event.Major, minor uint16, data []uint64) bool {
	if a.mask.Load()&major.Bit() == 0 {
		return false
	}
	return a.logWords(major, minor, data)
}

// logWords is LogWords without the cheap entry mask check, for callers
// that have already tested the mask this call (LogDesc via Enabled).
// begin's post-inflight re-load still runs, so the Quiesce race stays
// closed; skipping the entry check only avoids a third, genuinely
// redundant load of the same word.
func (a *Arena) logWords(major event.Major, minor uint16, data []uint64) bool {
	length := 1 + len(data)
	if !a.fits(length) {
		return false
	}
	idx, ts, ok := a.begin(major.Bit(), length)
	if !ok {
		return false
	}
	p := idx & a.indexMask
	a.buf[p] = uint64(event.MakeHeader(uint32(ts), length, major, minor))
	copy(a.buf[p+1:p+uint64(length)], data)
	a.commit(idx, uint64(length))
	a.statAdd(ctlStatEvents, 1)
	a.statAdd(ctlStatWords, uint64(length))
	a.end()
	return true
}

// ReserveOnly reserves space for an event but never writes or commits it.
// It exists solely to inject the paper's failure mode — "a process's
// execution may be interrupted after it has reserved space to log an
// event, but before it actually performs the log" (killed mid-log) — so
// tests can verify that commit-count anomaly detection catches it.
func (a *Arena) ReserveOnly(major event.Major, minor uint16, payloadWords int) bool {
	bit := major.Bit()
	if a.mask.Load()&bit == 0 {
		return false
	}
	if !a.fits(1 + payloadWords) {
		return false
	}
	_, _, ok := a.begin(bit, 1+payloadWords)
	if ok {
		a.end()
	}
	return ok
}

// ReserveHang reserves space for an event and returns while still "in
// flight": the space is never written or committed and the in-flight
// count stays raised — exactly the state a process SIGKILLed between
// reserve and commit leaves behind in a shared mapping. It exists for the
// cross-process fault injector, whose child calls it and is then killed;
// the daemon's pid-liveness reap writes the dead contribution off. It
// returns the total words reserved (header + payload, plus nothing for
// any filler/anchor the reservation's transition committed on its own).
func (a *Arena) ReserveHang(major event.Major, minor uint16, payloadWords int) (int, bool) {
	bit := major.Bit()
	if a.mask.Load()&bit == 0 {
		return 0, false
	}
	length := 1 + payloadWords
	if !a.fits(length) {
		return 0, false
	}
	_, _, ok := a.begin(bit, length)
	if !ok {
		return 0, false
	}
	return length, true
}

// --- CPU-handle entry points -------------------------------------------------

// Log0 logs an event with no payload. It reports whether the event was
// logged (false: tracing disabled for the major, event dropped, or too
// large).
func (c CPU) Log0(major event.Major, minor uint16) bool { return c.ctl.a.Log0(major, minor) }

// Log1 logs an event with one 64-bit payload word.
func (c CPU) Log1(major event.Major, minor uint16, d0 uint64) bool {
	return c.ctl.a.Log1(major, minor, d0)
}

// Log2 logs an event with two 64-bit payload words.
func (c CPU) Log2(major event.Major, minor uint16, d0, d1 uint64) bool {
	return c.ctl.a.Log2(major, minor, d0, d1)
}

// Log3 logs an event with three 64-bit payload words.
func (c CPU) Log3(major event.Major, minor uint16, d0, d1, d2 uint64) bool {
	return c.ctl.a.Log3(major, minor, d0, d1, d2)
}

// Log4 logs an event with four 64-bit payload words.
func (c CPU) Log4(major event.Major, minor uint16, d0, d1, d2, d3 uint64) bool {
	return c.ctl.a.Log4(major, minor, d0, d1, d2, d3)
}

// Log logs an event with an arbitrary payload — the generic function per
// major ID of the paper. The payload is copied into the trace buffer.
func (c CPU) Log(major event.Major, minor uint16, data ...uint64) bool {
	return c.ctl.a.LogWords(major, minor, data)
}

// LogWords logs an event whose payload is the given word slice.
func (c CPU) LogWords(major event.Major, minor uint16, data []uint64) bool {
	return c.ctl.a.LogWords(major, minor, data)
}

// LogDesc packs values per the event description's token list and logs
// them. It is the convenient (not the fast) path: use it for rare events
// with strings or mixed-width fields.
func (c CPU) LogDesc(d *event.Desc, vals ...event.Value) bool {
	if !c.Enabled(d.Major) {
		return false
	}
	words, err := event.Pack(d.Tokens, vals)
	if err != nil {
		return false
	}
	return c.ctl.a.logWords(d.Major, d.Minor, words)
}

// ReserveOnly reserves space for an event but never writes or commits it;
// see Arena.ReserveOnly.
func (c CPU) ReserveOnly(major event.Major, minor uint16, payloadWords int) bool {
	return c.ctl.a.ReserveOnly(major, minor, payloadWords)
}
