package core

import (
	"runtime"

	"k42trace/internal/event"
)

// slowResult is the outcome of one slow-path attempt.
type slowResult int

const (
	slowWon     slowResult = iota // space reserved; caller may log
	slowRetry                     // lost a race or waiting; re-run the loop
	slowDropped                   // event dropped (Drop policy or shutdown)
)

// reserve implements traceReserve from Figure 2 of the paper. It reserves
// length words (header included) in this CPU's trace memory and returns
// the free-running start index and the timestamp to put in the header.
//
// The timestamp is (re-)read inside the retry loop, immediately before the
// compare-and-swap: "it is important to guarantee monotonically increasing
// timestamps [so] processes must re-determine the timestamp during each
// attempt to atomically increment the index." A successful CAS therefore
// orders the timestamp read after the previous winner's CAS, making each
// CPU's stream monotone.
func (ctl *TrcCtl) reserve(bit uint64, length int) (idx uint64, ts uint64, ok bool) {
	t := ctl.t
	bw := t.bufWords
	if t.cfg.UnsafeStaleTimestamp {
		// Ablation: the bug the paper warns against — one read before the
		// loop. A process that loses the CAS and retries keeps its stale
		// timestamp, so a competitor can take an earlier slot with a later
		// stamp (or vice versa), breaking per-stream monotonicity.
		ts = t.clock.Now(ctl.cpu)
	}
	for {
		old := ctl.index.Load()
		off := old & (bw - 1)
		if off == 0 || off+uint64(length) > bw {
			i, s, res := ctl.reserveSlow(bit, old, length)
			switch res {
			case slowWon:
				return i, s, true
			case slowDropped:
				return 0, 0, false
			}
			continue // slowRetry
		}
		if !t.cfg.UnsafeStaleTimestamp {
			ts = t.clock.Now(ctl.cpu)
		}
		if ctl.index.CompareAndSwap(old, old+uint64(length)) {
			if (old+uint64(length))&(bw-1) == 0 {
				ctl.stats.exactFit.Add(1)
			}
			return old, ts, true
		}
		ctl.stats.retries.Add(1)
	}
}

// reserveSlow handles reservations that start a new buffer: when the
// reservation would cross the alignment boundary (a filler event pads the
// remainder) or when the index sits exactly on a boundary (a fresh buffer
// is being entered). The winner of the CAS becomes the transition owner:
// it writes the filler, claims the next buffer slot, logs the clock-anchor
// event that begins every buffer, and returns the space for the caller's
// own event just after the anchor.
func (ctl *TrcCtl) reserveSlow(bit uint64, old uint64, length int) (uint64, uint64, slowResult) {
	t := ctl.t
	bw := t.bufWords
	off := old & (bw - 1)
	boundary := old
	if off != 0 {
		boundary = old + bw - off
	}
	fill := boundary - old
	target := boundary + anchorWords + uint64(length)

	newSlot := &ctl.slots[(boundary/bw)&(t.numBufs-1)]
	if t.cfg.Mode == Stream && newSlot.state.Load() != slotFree {
		// The consumer has not released this buffer yet.
		switch t.cfg.OnFull {
		case Drop:
			ctl.stats.dropped.Add(1)
			return 0, 0, slowDropped
		default: // Block
			if t.mask.Load()&bit == 0 {
				// Tracing was disabled (or the tracer stopped) while we
				// waited; bail out rather than blocking shutdown.
				ctl.stats.dropped.Add(1)
				return 0, 0, slowDropped
			}
			if ctl.reclaimStuck(newSlot, boundary) {
				return 0, 0, slowRetry // slot sealed anomalous; try again
			}
			ctl.stats.blockWaits.Add(1)
			runtime.Gosched()
			return 0, 0, slowRetry
		}
	}

	ts := t.clock.Now(ctl.cpu)
	if !ctl.index.CompareAndSwap(old, target) {
		ctl.stats.retries.Add(1)
		return 0, 0, slowRetry
	}

	// We are the unique transition winner for this boundary.
	newSlot.state.Store(slotInUse)
	newSlot.start.Store(boundary)
	if t.cfg.Mode == FlightRecorder {
		// Recycle the slot's accounting for the new generation. (In Stream
		// mode the consumer's Release resets it while the slot is
		// quiescent.)
		newSlot.committed.Store(0)
	}
	if fill > 0 {
		ctl.writeFiller(old, fill, uint32(ts))
		ctl.commit(old, fill)
	}
	pos := boundary & t.indexMask
	ctl.buf[pos] = uint64(event.MakeHeader(uint32(ts), anchorWords,
		event.MajorControl, event.CtrlClockAnchor))
	ctl.buf[pos+1] = ts
	ctl.stats.anchors.Add(1)
	ctl.commit(boundary, anchorWords)
	if target&(bw-1) == 0 {
		ctl.stats.exactFit.Add(1)
	}
	return boundary + anchorWords, ts, slowWon
}

// reclaimStuck seals a stuck buffer: one whose commit count stalled short
// of the buffer size because a writer reserved space and was then killed
// before logging — §3.1's failure mode. The normal seal happens at the
// buffer's last commit, which for such a buffer never arrives; without
// reclamation the slot would never reach the consumer and the ring would
// wedge as soon as writers wrapped back around to it. Real write-out
// (K42's trace daemon) ships buffers on buffer-switch regardless and
// "reports an anomaly if they do not match"; this is that write-out,
// deferred to the moment a writer actually needs the slot back.
//
// Reclaiming is only race-free when no other logger on this CPU is in
// flight: commits happen only inside in-flight logging calls, so with the
// caller alone (inflight == 1, counting itself) the stuck buffer's commit
// count is final and the consumer may read its words. The state CAS makes
// the seal unique against the buffer completing concurrently after all.
func (ctl *TrcCtl) reclaimStuck(sl *slot, boundary uint64) bool {
	t := ctl.t
	if ctl.inflight.Load() != 1 {
		return false
	}
	start := sl.start.Load()
	if start >= boundary {
		return false // current generation; not ours to seal
	}
	committed := sl.committed.Load()
	if committed >= t.bufWords {
		return false // fully committed: its last commit seals it
	}
	if !sl.state.CompareAndSwap(slotInUse, slotPending) {
		return false
	}
	lo := start & t.indexMask
	ctl.stats.seals.Add(1)
	ctl.stats.stuckSeals.Add(1)
	t.sealed <- Sealed{
		CPU:       ctl.cpu,
		Seq:       start / t.bufWords,
		Start:     start,
		Words:     ctl.buf[lo : lo+t.bufWords],
		Committed: committed,
	}
	return true
}

// writeFiller pads [from, from+n) with filler events: bare headers whose
// length covers the padded words ("a filler event is just a header with a
// length equal to the remainder of the current buffer; no data need be
// logged"). Remainders larger than the maximum event length chain multiple
// fillers.
func (ctl *TrcCtl) writeFiller(from, n uint64, ts32 uint32) {
	mask := ctl.t.indexMask
	ctl.stats.fillerWords.Add(n)
	for n > 0 {
		l := n
		if l > event.MaxWords {
			l = event.MaxWords
		}
		ctl.buf[from&mask] = uint64(event.MakeHeader(ts32, int(l),
			event.MajorControl, event.CtrlFiller))
		ctl.stats.fillerEvents.Add(1)
		from += l
		n -= l
	}
}

// commit is traceCommit: it adds words to the per-buffer count of data
// actually logged. When the count reaches the buffer size the buffer is
// complete; in Stream mode the committer that completes it seals it and
// hands it to the consumer. A buffer whose count never reaches its size
// had a writer that reserved space but never finished logging — the
// anomaly the per-buffer counts exist to detect.
func (ctl *TrcCtl) commit(idx uint64, words uint64) {
	t := ctl.t
	s := &ctl.slots[(idx/t.bufWords)&(t.numBufs-1)]
	c := s.committed.Add(words)
	if c == t.bufWords && t.cfg.Mode == Stream {
		s.state.Store(slotPending)
		start := s.start.Load()
		lo := start & t.indexMask
		ctl.stats.seals.Add(1)
		t.sealed <- Sealed{
			CPU:       ctl.cpu,
			Seq:       start / t.bufWords,
			Start:     start,
			Words:     ctl.buf[lo : lo+t.bufWords],
			Committed: t.bufWords,
		}
	}
}

// begin is the common prologue of every logging call: it registers the
// logger as in-flight (so flight-recorder dumps can drain to quiescence),
// re-checks the mask, and reserves space.
//
// The mask is loaded twice per enabled event — once in the entry point,
// once here — and both loads are necessary; neither is the redundancy it
// looks like. The entry-point check keeps the *disabled* path to a single
// load+branch (the paper's "single comparison against a trace mask"
// cost); doing inflight.Add first would put two atomic RMWs on every
// disabled trace point. The re-load here, *after* inflight.Add, closes
// the race with Quiesce: the drain observes inflight==0 only after our
// Add, and mask.Swap(0) happened before the drain began, so any logger
// that slipped past the entry check while tracing was being disabled is
// guaranteed to see the zero mask here and back out. Dropping this
// re-check would let such a logger write into buffers the dumper believes
// are quiescent. (What *was* redundant here — a per-call length check
// that is statically dead for the fixed-arity Log0..Log4, whose lengths
// of 1..5 words always fit the BufWords >= 16 / MaxWords = 1023 floors —
// now lives only in the variable-length entry points.)
func (ctl *TrcCtl) begin(bit uint64, length int) (idx uint64, ts uint64, ok bool) {
	ctl.inflight.Add(1)
	if ctl.t.mask.Load()&bit == 0 {
		ctl.inflight.Add(-1)
		return 0, 0, false
	}
	idx, ts, ok = ctl.reserve(bit, length)
	if !ok {
		ctl.inflight.Add(-1)
	}
	return idx, ts, ok
}

// fits reports whether an event of the given total length (header
// included) can ever be logged: it must leave room for the buffer's
// leading clock anchor and be encodable in the header's length field.
// Callers with a constant length <= 5 (Log0..Log4) need not ask.
func (ctl *TrcCtl) fits(length int) bool {
	if uint64(length) > ctl.t.bufWords-anchorWords || length > event.MaxWords {
		ctl.stats.tooLarge.Add(1)
		return false
	}
	return true
}

// end is the epilogue: the logger is no longer in flight.
func (ctl *TrcCtl) end() { ctl.inflight.Add(-1) }

// --- Logging entry points ---------------------------------------------------
//
// Log0..Log4 are the analogue of K42's per-major-ID macros: "events with a
// constant number of data words [are] logged efficiently, without the use
// of variable argument functions." Log is the generic variadic function
// used for non-constant-length data.

// Log0 logs an event with no payload. It reports whether the event was
// logged (false: tracing disabled for the major, event dropped, or too
// large).
func (c CPU) Log0(major event.Major, minor uint16) bool {
	ctl := c.ctl
	bit := major.Bit()
	if ctl.t.mask.Load()&bit == 0 {
		return false
	}
	idx, ts, ok := ctl.begin(bit, 1)
	if !ok {
		return false
	}
	ctl.buf[idx&ctl.t.indexMask] = uint64(event.MakeHeader(uint32(ts), 1, major, minor))
	ctl.commit(idx, 1)
	ctl.stats.events.Add(1)
	ctl.stats.words.Add(1)
	ctl.end()
	return true
}

// Log1 logs an event with one 64-bit payload word.
func (c CPU) Log1(major event.Major, minor uint16, d0 uint64) bool {
	ctl := c.ctl
	bit := major.Bit()
	if ctl.t.mask.Load()&bit == 0 {
		return false
	}
	idx, ts, ok := ctl.begin(bit, 2)
	if !ok {
		return false
	}
	p := idx & ctl.t.indexMask
	ctl.buf[p] = uint64(event.MakeHeader(uint32(ts), 2, major, minor))
	ctl.buf[p+1] = d0
	ctl.commit(idx, 2)
	ctl.stats.events.Add(1)
	ctl.stats.words.Add(2)
	ctl.end()
	return true
}

// Log2 logs an event with two 64-bit payload words.
func (c CPU) Log2(major event.Major, minor uint16, d0, d1 uint64) bool {
	ctl := c.ctl
	bit := major.Bit()
	if ctl.t.mask.Load()&bit == 0 {
		return false
	}
	idx, ts, ok := ctl.begin(bit, 3)
	if !ok {
		return false
	}
	p := idx & ctl.t.indexMask
	ctl.buf[p] = uint64(event.MakeHeader(uint32(ts), 3, major, minor))
	ctl.buf[p+1] = d0
	ctl.buf[p+2] = d1
	ctl.commit(idx, 3)
	ctl.stats.events.Add(1)
	ctl.stats.words.Add(3)
	ctl.end()
	return true
}

// Log3 logs an event with three 64-bit payload words.
func (c CPU) Log3(major event.Major, minor uint16, d0, d1, d2 uint64) bool {
	ctl := c.ctl
	bit := major.Bit()
	if ctl.t.mask.Load()&bit == 0 {
		return false
	}
	idx, ts, ok := ctl.begin(bit, 4)
	if !ok {
		return false
	}
	p := idx & ctl.t.indexMask
	ctl.buf[p] = uint64(event.MakeHeader(uint32(ts), 4, major, minor))
	ctl.buf[p+1] = d0
	ctl.buf[p+2] = d1
	ctl.buf[p+3] = d2
	ctl.commit(idx, 4)
	ctl.stats.events.Add(1)
	ctl.stats.words.Add(4)
	ctl.end()
	return true
}

// Log4 logs an event with four 64-bit payload words.
func (c CPU) Log4(major event.Major, minor uint16, d0, d1, d2, d3 uint64) bool {
	ctl := c.ctl
	bit := major.Bit()
	if ctl.t.mask.Load()&bit == 0 {
		return false
	}
	idx, ts, ok := ctl.begin(bit, 5)
	if !ok {
		return false
	}
	p := idx & ctl.t.indexMask
	ctl.buf[p] = uint64(event.MakeHeader(uint32(ts), 5, major, minor))
	ctl.buf[p+1] = d0
	ctl.buf[p+2] = d1
	ctl.buf[p+3] = d2
	ctl.buf[p+4] = d3
	ctl.commit(idx, 5)
	ctl.stats.events.Add(1)
	ctl.stats.words.Add(5)
	ctl.end()
	return true
}

// Log logs an event with an arbitrary payload — the generic function per
// major ID of the paper. The payload is copied into the trace buffer.
func (c CPU) Log(major event.Major, minor uint16, data ...uint64) bool {
	return c.LogWords(major, minor, data)
}

// LogWords logs an event whose payload is the given word slice. Use
// event.Pack to build payloads containing packed sub-word fields or
// strings.
func (c CPU) LogWords(major event.Major, minor uint16, data []uint64) bool {
	if c.ctl.t.mask.Load()&major.Bit() == 0 {
		return false
	}
	return c.logWords(major, minor, data)
}

// logWords is LogWords without the cheap entry mask check, for callers
// that have already tested the mask this call (LogDesc via Enabled).
// begin's post-inflight re-load still runs, so the Quiesce race stays
// closed; skipping the entry check only avoids a third, genuinely
// redundant load of the same word.
func (c CPU) logWords(major event.Major, minor uint16, data []uint64) bool {
	ctl := c.ctl
	length := 1 + len(data)
	if !ctl.fits(length) {
		return false
	}
	idx, ts, ok := ctl.begin(major.Bit(), length)
	if !ok {
		return false
	}
	p := idx & ctl.t.indexMask
	ctl.buf[p] = uint64(event.MakeHeader(uint32(ts), length, major, minor))
	copy(ctl.buf[p+1:p+uint64(length)], data)
	ctl.commit(idx, uint64(length))
	ctl.stats.events.Add(1)
	ctl.stats.words.Add(uint64(length))
	ctl.end()
	return true
}

// LogDesc packs values per the event description's token list and logs
// them. It is the convenient (not the fast) path: use it for rare events
// with strings or mixed-width fields.
func (c CPU) LogDesc(d *event.Desc, vals ...event.Value) bool {
	if !c.Enabled(d.Major) {
		return false
	}
	words, err := event.Pack(d.Tokens, vals)
	if err != nil {
		return false
	}
	return c.logWords(d.Major, d.Minor, words)
}

// ReserveOnly reserves space for an event but never writes or commits it.
// It exists solely to inject the paper's failure mode — "a process's
// execution may be interrupted after it has reserved space to log an
// event, but before it actually performs the log" (killed mid-log) — so
// tests can verify that commit-count anomaly detection catches it.
func (c CPU) ReserveOnly(major event.Major, minor uint16, payloadWords int) bool {
	ctl := c.ctl
	bit := major.Bit()
	if ctl.t.mask.Load()&bit == 0 {
		return false
	}
	if !ctl.fits(1 + payloadWords) {
		return false
	}
	_, _, ok := ctl.begin(bit, 1+payloadWords)
	if ok {
		ctl.end()
	}
	return ok
}
