// Package core implements the paper's primary contribution: lockless
// logging of variable-length trace events into per-processor buffers,
// with random access to the event stream preserved by never letting an
// event cross a buffer (alignment) boundary.
//
// The reservation algorithm is the one in Figure 2 of the paper: a process
// reserves space by atomically advancing the per-CPU buffer index with a
// compare-and-swap, re-reading the timestamp on every retry so that
// timestamps within a CPU's stream are monotonically non-decreasing. The
// winner of the CAS owns the reserved words and fills them in with plain
// stores; a per-buffer commit count detects events that were reserved but
// never written (a process killed or blocked mid-log).
package core

import (
	"fmt"
	"math/bits"

	"k42trace/internal/clock"
)

// Mode selects what happens to buffers as they fill.
type Mode int

const (
	// FlightRecorder treats each CPU's trace memory as a circular buffer:
	// new events overwrite the oldest ones, and the most recent activity is
	// always available to a debugger via Dump. This is the paper's
	// correctness-debugging configuration.
	FlightRecorder Mode = iota
	// Stream seals each buffer as it fills and hands it to a consumer
	// (disk writer, network relay) via the Sealed channel. The consumer
	// must Release each buffer to recycle it.
	Stream
)

func (m Mode) String() string {
	switch m {
	case FlightRecorder:
		return "flight-recorder"
	case Stream:
		return "stream"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// OnFull selects the writer-side policy in Stream mode when the next
// buffer has not yet been released by the consumer.
type OnFull int

const (
	// Block makes the logging call wait (yielding the processor) until the
	// consumer releases the buffer. Lossless; the default.
	Block OnFull = iota
	// Drop discards the event and counts it in Stats.Dropped. Lossy but
	// non-blocking, for consumers that may stall.
	Drop
)

func (o OnFull) String() string {
	switch o {
	case Block:
		return "block"
	case Drop:
		return "drop"
	}
	return fmt.Sprintf("OnFull(%d)", int(o))
}

// Config describes a Tracer. The zero value is not usable; call New.
type Config struct {
	// CPUs is the number of processor slots; each gets an independent set
	// of buffers and control structures so logging on different CPUs never
	// shares cache lines. Must be >= 1.
	CPUs int
	// BufWords is the size of one buffer in 64-bit words — the paper's
	// medium-scale alignment boundary (e.g. 128 KiB = 16384 words). Must be
	// a power of two >= 16. Events never cross a BufWords boundary.
	BufWords int
	// NumBufs is the number of buffers per CPU. Must be a power of two
	// >= 2.
	NumBufs int
	// Clock supplies timestamps. Defaults to a shared synchronized
	// nanosecond clock (clock.NewSync()).
	Clock clock.Source
	// Mode selects FlightRecorder (default) or Stream.
	Mode Mode
	// OnFull selects the Stream-mode full-buffer policy (default Block).
	OnFull OnFull
	// ZeroFill zeroes each buffer when the consumer releases it — one of
	// §3.1's cheaper mitigations for garbled data ("cheaply zero-filling a
	// buffer before use"): a reservation that is never written then
	// decodes as a clean, detectable hole rather than as stale events from
	// the buffer's previous generation. Release time is the only moment a
	// slot is quiescent, so ZeroFill requires Stream mode.
	ZeroFill bool
	// BatchWords enables the per-P batched fast path (the PLog0..PLog4
	// entry points): each runtime processor keeps a private Batch of this
	// many words, refilled with one reservation CAS and consumed with
	// plain arithmetic. Larger batches amortize the CAS over more events
	// but freeze the timestamp over more of them (every event in a batch
	// carries the batch-open stamp) and waste more tail filler when
	// traffic is bursty. 0 (the default) disables batching: PLog calls
	// become plain per-CPU logs with P-affinity. Must leave room for the
	// buffer's clock anchor: BatchWords <= BufWords - 2.
	BatchWords int
	// UnsafeStaleTimestamp, when set, reads the timestamp once before the
	// CAS loop instead of inside it. This deliberately reintroduces the bug
	// the paper warns about — "that process may be interrupted by another
	// process [which] gets the next slot in the buffer, but obtains an
	// earlier timestamp" — and exists only for the ablation test and bench
	// that demonstrate why in-loop re-reading matters.
	UnsafeStaleTimestamp bool
}

// Defaults mirroring a 128KiB-buffer K42 configuration scaled down for
// tests; production users set their own.
const (
	DefaultBufWords = 16384 // 128 KiB of 64-bit words
	DefaultNumBufs  = 4
)

func (c *Config) fill() error {
	if c.CPUs < 1 {
		return fmt.Errorf("core: CPUs must be >= 1, got %d", c.CPUs)
	}
	if c.BufWords == 0 {
		c.BufWords = DefaultBufWords
	}
	if c.NumBufs == 0 {
		c.NumBufs = DefaultNumBufs
	}
	if c.BufWords < 16 || bits.OnesCount(uint(c.BufWords)) != 1 {
		return fmt.Errorf("core: BufWords must be a power of two >= 16, got %d", c.BufWords)
	}
	if c.NumBufs < 2 || bits.OnesCount(uint(c.NumBufs)) != 1 {
		return fmt.Errorf("core: NumBufs must be a power of two >= 2, got %d", c.NumBufs)
	}
	if c.Clock == nil {
		c.Clock = clock.NewSync()
	}
	if c.Mode != FlightRecorder && c.Mode != Stream {
		return fmt.Errorf("core: unknown mode %d", c.Mode)
	}
	if c.ZeroFill && c.Mode != Stream {
		return fmt.Errorf("core: ZeroFill requires Stream mode (buffers are only quiescent at Release)")
	}
	if c.BatchWords < 0 || c.BatchWords > c.BufWords-2 {
		return fmt.Errorf("core: BatchWords must be in [0, BufWords-2], got %d (BufWords %d)",
			c.BatchWords, c.BufWords)
	}
	return nil
}
