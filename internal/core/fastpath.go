// The per-P sharded fast path: each runtime processor (P) keeps a private
// open Batch, so an uncontended PLog call appends with plain arithmetic —
// no reservation CAS, no in-flight RMW, no clock read. procPin gives the
// calling goroutine momentary CPU-slot affinity, the analogue of the
// paper's "memory bound to a specific processor": as long as a P stays
// the sole logger of its slot, its events go through the amortized path
// and the retry loop is never entered.
package core

import (
	"runtime"
	"sync/atomic"
	"time"
	_ "unsafe" // for go:linkname

	"k42trace/internal/event"
)

// procPin pins the calling goroutine to its current P and returns the
// P's id; procUnpin releases it. Pinning disables preemption, so the
// pinned window below is a handful of plain stores — never a blocking
// call. These are the same runtime hooks sync.Pool uses for its per-P
// shards; both carry push linknames in the runtime.
//
//go:linkname procPin runtime.procPin
func procPin() int

//go:linkname procUnpin runtime.procUnpin
func procUnpin()

// Per-P slot states. A slot is claimed with a CAS so a migrated goroutine
// that lands on an already-busy P falls back to the shared path instead
// of corrupting the batch; the flusher claims every slot (pPaused) to
// close parked batches before quiescence waits.
const (
	pFree uint64 = iota
	pHeld
	pPaused
)

// pSlot is one P's batch shard. The leading pad keeps neighbouring slots
// off each other's cache lines — the whole point is that P-local logging
// touches no shared line.
type pSlot struct {
	_     [8]uint64
	state atomic.Uint64
	b     Batch
}

// initFastPath sizes the per-P shard array. Shards map onto CPU slots by
// p % CPUs, so any GOMAXPROCS works with any configured CPU count.
func (t *Tracer) initFastPath(batchWords int) {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	t.pslots = make([]pSlot, n)
	t.batchWords = batchWords
}

// pArena returns the arena the per-P shard p logs into.
func (t *Tracer) pArena(p int) *Arena { return t.cpus[p%len(t.cpus)].a }

// PLog0 logs an event with no payload through the per-P fast path. Like
// Log0 it reports whether the event was logged; unlike Log0 the caller
// does not pick a CPU slot — the current P does.
func (t *Tracer) PLog0(major event.Major, minor uint16) bool {
	bit := major.Bit()
	if t.mask.Load()&bit == 0 {
		return false
	}
	p := procPin()
	if t.batchWords > 0 {
		s := &t.pslots[p%len(t.pslots)]
		if s.state.CompareAndSwap(pFree, pHeld) {
			if s.b.Log0(major, minor) {
				s.state.Store(pFree)
				procUnpin()
				return true
			}
			procUnpin()
			return t.pSlow(s, p, major, minor, 0, 0, 0, 0, 0)
		}
	}
	procUnpin()
	return t.pArena(p).Log0(major, minor)
}

// PLog1 logs an event with one 64-bit payload word through the per-P
// fast path.
func (t *Tracer) PLog1(major event.Major, minor uint16, d0 uint64) bool {
	bit := major.Bit()
	if t.mask.Load()&bit == 0 {
		return false
	}
	p := procPin()
	if t.batchWords > 0 {
		s := &t.pslots[p%len(t.pslots)]
		if s.state.CompareAndSwap(pFree, pHeld) {
			if s.b.Log1(major, minor, d0) {
				s.state.Store(pFree)
				procUnpin()
				return true
			}
			procUnpin()
			return t.pSlow(s, p, major, minor, 1, d0, 0, 0, 0)
		}
	}
	procUnpin()
	return t.pArena(p).Log1(major, minor, d0)
}

// PLog2 logs an event with two 64-bit payload words through the per-P
// fast path.
func (t *Tracer) PLog2(major event.Major, minor uint16, d0, d1 uint64) bool {
	bit := major.Bit()
	if t.mask.Load()&bit == 0 {
		return false
	}
	p := procPin()
	if t.batchWords > 0 {
		s := &t.pslots[p%len(t.pslots)]
		if s.state.CompareAndSwap(pFree, pHeld) {
			if s.b.Log2(major, minor, d0, d1) {
				s.state.Store(pFree)
				procUnpin()
				return true
			}
			procUnpin()
			return t.pSlow(s, p, major, minor, 2, d0, d1, 0, 0)
		}
	}
	procUnpin()
	return t.pArena(p).Log2(major, minor, d0, d1)
}

// PLog3 logs an event with three 64-bit payload words through the per-P
// fast path.
func (t *Tracer) PLog3(major event.Major, minor uint16, d0, d1, d2 uint64) bool {
	bit := major.Bit()
	if t.mask.Load()&bit == 0 {
		return false
	}
	p := procPin()
	if t.batchWords > 0 {
		s := &t.pslots[p%len(t.pslots)]
		if s.state.CompareAndSwap(pFree, pHeld) {
			if s.b.Log3(major, minor, d0, d1, d2) {
				s.state.Store(pFree)
				procUnpin()
				return true
			}
			procUnpin()
			return t.pSlow(s, p, major, minor, 3, d0, d1, d2, 0)
		}
	}
	procUnpin()
	return t.pArena(p).Log3(major, minor, d0, d1, d2)
}

// PLog4 logs an event with four 64-bit payload words through the per-P
// fast path.
func (t *Tracer) PLog4(major event.Major, minor uint16, d0, d1, d2, d3 uint64) bool {
	bit := major.Bit()
	if t.mask.Load()&bit == 0 {
		return false
	}
	p := procPin()
	if t.batchWords > 0 {
		s := &t.pslots[p%len(t.pslots)]
		if s.state.CompareAndSwap(pFree, pHeld) {
			if s.b.Log4(major, minor, d0, d1, d2, d3) {
				s.state.Store(pFree)
				procUnpin()
				return true
			}
			procUnpin()
			return t.pSlow(s, p, major, minor, 4, d0, d1, d2, d3)
		}
	}
	procUnpin()
	return t.pArena(p).Log4(major, minor, d0, d1, d2, d3)
}

// pSlow is the miss path: the claimed shard's batch was closed, full, or
// masked for this major. The caller has unpinned but still holds the
// slot claim, so the batch is exclusively ours while we cycle it. Cycling
// may block (full ring under the Block policy), which is why it runs
// unpinned.
func (t *Tracer) pSlow(s *pSlot, p int, major event.Major, minor uint16, n int, d0, d1, d2, d3 uint64) bool {
	a := t.pArena(p)
	s.b.Close()
	ok := false
	if a.OpenBatch(&s.b, major, t.batchWords) {
		switch n {
		case 0:
			ok = s.b.Log0(major, minor)
		case 1:
			ok = s.b.Log1(major, minor, d0)
		case 2:
			ok = s.b.Log2(major, minor, d0, d1)
		case 3:
			ok = s.b.Log3(major, minor, d0, d1, d2)
		case 4:
			ok = s.b.Log4(major, minor, d0, d1, d2, d3)
		}
	}
	s.state.Store(pFree)
	if ok {
		return true
	}
	// Batch would not open (masked, dropped, shutdown) or the event is
	// larger than the batch: the shared reservation path decides.
	switch n {
	case 0:
		return a.Log0(major, minor)
	case 1:
		return a.Log1(major, minor, d0)
	case 2:
		return a.Log2(major, minor, d0, d1)
	case 3:
		return a.Log3(major, minor, d0, d1, d2)
	default:
		return a.Log4(major, minor, d0, d1, d2, d3)
	}
}

// pauseBatches claims every per-P shard and closes its parked batch. A
// parked batch holds its opener's in-flight registration, so every
// quiescence wait (Quiesce, ApplyMask, Stop) must run this first or it
// would wait forever for a commit that arrives only on the next PLog
// miss. The claims are held until resumeBatches so the drain that follows
// cannot race a new batch opening; PLogs meanwhile fall back to the
// shared path (and fail its mask re-check if tracing is being disabled).
// Paired pause/resume calls are serialized by pauseMu.
func (t *Tracer) pauseBatches() {
	t.pauseMu.Lock()
	for i := range t.pslots {
		s := &t.pslots[i]
		// A holder keeps the claim only across one append or one batch
		// cycle; spin briefly, then back off to real sleeps (GOMAXPROCS=1
		// needs the holder to get the processor back).
		for spins := 0; !s.state.CompareAndSwap(pFree, pPaused); spins++ {
			if spins < 64 {
				runtime.Gosched()
			} else {
				time.Sleep(time.Microsecond)
			}
		}
		s.b.Close()
	}
}

// resumeBatches releases the shard claims taken by pauseBatches.
func (t *Tracer) resumeBatches() {
	for i := range t.pslots {
		t.pslots[i].state.Store(pFree)
	}
	t.pauseMu.Unlock()
}
