package core

import (
	"sync/atomic"

	"k42trace/internal/clock"
	"k42trace/internal/event"
)

// anchorWords is the size of the clock-anchor event that begins every
// buffer: header + one payload word carrying the full 64-bit timestamp.
const anchorWords = 2

// slot states; see slot.state.
const (
	slotFree    uint32 = iota // available for writers
	slotInUse                 // current generation being filled
	slotPending               // sealed, awaiting consumer Release
)

// slot is the per-buffer bookkeeping: the commit count that detects
// garbled buffers, and the recycle state used in Stream mode.
type slot struct {
	// committed counts 64-bit words actually written into the current
	// generation of this buffer (event payloads, headers, fillers, the
	// anchor). When it reaches BufWords the buffer is complete and is
	// sealed. A shortfall at flush time means a writer reserved space but
	// never logged — the anomaly the paper's per-buffer counts detect.
	committed atomic.Uint64
	// state is the recycle state (slotFree/slotInUse/slotPending).
	state atomic.Uint32
	// start is the free-running word index of this generation's first word,
	// recorded by the transition winner; used by seals and flushes.
	start atomic.Uint64
}

// TrcCtl is the per-processor trace control structure. All hot state for
// logging on one CPU lives here, padded so that different CPUs' control
// structures never share a cache line (the paper's "memory bound to a
// specific processor").
type TrcCtl struct {
	// index is the free-running reservation index in words. The low bits
	// (index & indexMask) locate the position in buf.
	index atomic.Uint64
	// inflight counts loggers currently between reservation and commit on
	// this CPU; the flight-recorder dump drains it to get a quiescent,
	// race-free view of the buffers.
	inflight atomic.Int64
	_        [48]byte // pad index+inflight away from the rest

	buf   []uint64 // NumBufs*BufWords trace words
	slots []slot
	cpu   int
	t     *Tracer

	stats CPUStats
	_     [64]byte // pad tail: adjacent TrcCtls never share a line
}

// Tracer is a unified tracing facility: a 64-bit mask gating 64 major
// event classes, per-CPU lockless buffers, and either flight-recorder or
// streaming buffer management. A single Tracer serves "applications,
// libraries, servers, and the kernel" — every component logs into the
// same per-CPU buffers with monotonically increasing timestamps.
type Tracer struct {
	mask atomic.Uint64
	_    [56]byte // keep the hot mask word on its own line

	cfg       Config
	clock     clock.Source
	cpus      []*TrcCtl
	bufWords  uint64
	numBufs   uint64
	indexMask uint64 // NumBufs*BufWords - 1
	sealed    chan Sealed
	stopped   atomic.Bool
}

// New creates a Tracer. The returned tracer has an all-zero mask: tracing
// is compiled in but disabled, the paper's always-ready resting state.
func New(cfg Config) (*Tracer, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	t := &Tracer{
		cfg:       cfg,
		clock:     cfg.Clock,
		bufWords:  uint64(cfg.BufWords),
		numBufs:   uint64(cfg.NumBufs),
		indexMask: uint64(cfg.BufWords*cfg.NumBufs) - 1,
	}
	t.cpus = make([]*TrcCtl, cfg.CPUs)
	for i := range t.cpus {
		t.cpus[i] = &TrcCtl{
			buf:   make([]uint64, cfg.BufWords*cfg.NumBufs),
			slots: make([]slot, cfg.NumBufs),
			cpu:   i,
			t:     t,
		}
	}
	// Seal channel sized so a sealing writer never blocks: at most NumBufs
	// outstanding seals per CPU plus one flush partial per CPU.
	t.sealed = make(chan Sealed, (cfg.NumBufs+1)*cfg.CPUs)
	return t, nil
}

// MustNew is New for tests and examples; it panics on config errors.
func MustNew(cfg Config) *Tracer {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the (validated, defaulted) configuration.
func (t *Tracer) Config() Config { return t.cfg }

// Clock returns the tracer's timestamp source.
func (t *Tracer) Clock() clock.Source { return t.clock }

// NumCPUs returns the number of processor slots.
func (t *Tracer) NumCPUs() int { return len(t.cpus) }

// BufWords returns the buffer (alignment boundary) size in words.
func (t *Tracer) BufWords() int { return int(t.bufWords) }

// --- Trace mask -----------------------------------------------------------
//
// "By limiting the number of major classes to 64, a single comparison of a
// major class bit against a trace mask variable can determine whether an
// event should be logged." The mask is the only state examined on the
// disabled path, so disabled trace points cost a load, an AND, and a
// branch.

// Enabled reports whether events of the major class are currently logged.
func (t *Tracer) Enabled(m event.Major) bool {
	return t.mask.Load()&m.Bit() != 0
}

// Mask returns the current 64-bit trace mask.
func (t *Tracer) Mask() uint64 { return t.mask.Load() }

// SetMask replaces the trace mask.
func (t *Tracer) SetMask(m uint64) { t.mask.Store(m) }

// Enable turns on logging for the given major classes.
func (t *Tracer) Enable(majors ...event.Major) {
	var bitsToSet uint64
	for _, m := range majors {
		bitsToSet |= m.Bit()
	}
	for {
		old := t.mask.Load()
		if t.mask.CompareAndSwap(old, old|bitsToSet) {
			return
		}
	}
}

// Disable turns off logging for the given major classes.
func (t *Tracer) Disable(majors ...event.Major) {
	var bitsToClear uint64
	for _, m := range majors {
		bitsToClear |= m.Bit()
	}
	for {
		old := t.mask.Load()
		if t.mask.CompareAndSwap(old, old&^bitsToClear) {
			return
		}
	}
}

// EnableAll enables every major class.
func (t *Tracer) EnableAll() { t.mask.Store(^uint64(0)) }

// DisableAll disables all tracing; trace points reduce to the mask check.
func (t *Tracer) DisableAll() { t.mask.Store(0) }

// --- CPU handles -----------------------------------------------------------

// CPU is a logging handle bound to one processor slot. Handles are
// obtained once and reused; logging through a handle touches only that
// CPU's control structures. The handle corresponds to the user-mapped
// per-processor control structure of the paper: applications and kernel
// code log through it directly, with no system call.
type CPU struct {
	ctl *TrcCtl
}

// CPU returns the logging handle for processor slot i.
func (t *Tracer) CPU(i int) CPU { return CPU{ctl: t.cpus[i]} }

// Tracer returns the owning tracer.
func (c CPU) Tracer() *Tracer { return c.ctl.t }

// ID returns the processor slot number.
func (c CPU) ID() int { return c.ctl.cpu }

// Enabled mirrors Tracer.Enabled for use on hot paths that already hold a
// handle.
func (c CPU) Enabled(m event.Major) bool { return c.ctl.t.Enabled(m) }
