package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"k42trace/internal/clock"
	"k42trace/internal/event"
)

// anchorWords is the size of the clock-anchor event that begins every
// buffer: header + one payload word carrying the full 64-bit timestamp.
const anchorWords = 2

// TrcCtl is the per-processor trace control structure: an Arena over this
// CPU's control words and buffer ring, plus the back-pointer to the owning
// tracer. The control words and buffers are separate allocations per CPU,
// so different CPUs' hot state never shares a cache line (the paper's
// "memory bound to a specific processor").
type TrcCtl struct {
	a   *Arena
	t   *Tracer
	cpu int
}

// Tracer is a unified tracing facility: a 64-bit mask gating 64 major
// event classes, per-CPU lockless buffers, and either flight-recorder or
// streaming buffer management. A single Tracer serves "applications,
// libraries, servers, and the kernel" — every component logs into the
// same per-CPU buffers with monotonically increasing timestamps.
type Tracer struct {
	mask atomic.Uint64
	_    [56]byte // keep the hot mask word on its own line

	cfg       Config
	clock     clock.Source
	cpus      []*TrcCtl
	bufWords  uint64
	numBufs   uint64
	indexMask uint64 // NumBufs*BufWords - 1
	sealed    chan Sealed
	stopped   atomic.Bool

	// maskMu serializes ApplyMask calls so the in-band CtrlMaskChange
	// markers on each CPU appear in the same order the masks were applied.
	maskMu      sync.Mutex
	maskApplies atomic.Uint64

	// Per-P batched fast path (see fastpath.go). pauseMu serializes the
	// pauseBatches/resumeBatches pairs that quiescence waits bracket
	// themselves with.
	pslots     []pSlot
	batchWords int
	pauseMu    sync.Mutex
}

// New creates a Tracer. The returned tracer has an all-zero mask: tracing
// is compiled in but disabled, the paper's always-ready resting state.
func New(cfg Config) (*Tracer, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	t := &Tracer{
		cfg:       cfg,
		clock:     cfg.Clock,
		bufWords:  uint64(cfg.BufWords),
		numBufs:   uint64(cfg.NumBufs),
		indexMask: uint64(cfg.BufWords*cfg.NumBufs) - 1,
	}
	// Seal channel sized so a sealing writer never blocks: at most NumBufs
	// outstanding seals per CPU plus one flush partial per CPU.
	t.sealed = make(chan Sealed, (cfg.NumBufs+1)*cfg.CPUs)
	var onFull func() bool
	if cfg.Mode == Stream && cfg.OnFull == Block {
		onFull = func() bool { runtime.Gosched(); return true }
	}
	t.cpus = make([]*TrcCtl, cfg.CPUs)
	for i := range t.cpus {
		a, err := NewArena(ArenaConfig{
			Ctl:                  make([]uint64, CtlWords(cfg.NumBufs)),
			Buf:                  make([]uint64, cfg.BufWords*cfg.NumBufs),
			Mask:                 &t.mask,
			Clock:                cfg.Clock,
			CPU:                  i,
			BufWords:             cfg.BufWords,
			NumBufs:              cfg.NumBufs,
			Stream:               cfg.Mode == Stream,
			UnsafeStaleTimestamp: cfg.UnsafeStaleTimestamp,
			OnSeal:               func(s Sealed) { t.sealed <- s },
			OnFull:               onFull,
		})
		if err != nil {
			return nil, err
		}
		t.cpus[i] = &TrcCtl{a: a, t: t, cpu: i}
	}
	t.initFastPath(cfg.BatchWords)
	return t, nil
}

// MustNew is New for tests and examples; it panics on config errors.
func MustNew(cfg Config) *Tracer {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the (validated, defaulted) configuration.
func (t *Tracer) Config() Config { return t.cfg }

// Clock returns the tracer's timestamp source.
func (t *Tracer) Clock() clock.Source { return t.clock }

// NumCPUs returns the number of processor slots.
func (t *Tracer) NumCPUs() int { return len(t.cpus) }

// BufWords returns the buffer (alignment boundary) size in words.
func (t *Tracer) BufWords() int { return int(t.bufWords) }

// Arena returns the per-CPU arena underlying processor slot i, for
// consumers that need direct word-level access (crash dumps, inspection).
func (t *Tracer) Arena(i int) *Arena { return t.cpus[i].a }

// --- Trace mask -----------------------------------------------------------
//
// "By limiting the number of major classes to 64, a single comparison of a
// major class bit against a trace mask variable can determine whether an
// event should be logged." The mask is the only state examined on the
// disabled path, so disabled trace points cost a load, an AND, and a
// branch.

// Enabled reports whether events of the major class are currently logged.
func (t *Tracer) Enabled(m event.Major) bool {
	return t.mask.Load()&m.Bit() != 0
}

// Mask returns the current 64-bit trace mask.
func (t *Tracer) Mask() uint64 { return t.mask.Load() }

// SetMask replaces the trace mask.
func (t *Tracer) SetMask(m uint64) { t.mask.Store(m) }

// Enable turns on logging for the given major classes.
func (t *Tracer) Enable(majors ...event.Major) {
	var bitsToSet uint64
	for _, m := range majors {
		bitsToSet |= m.Bit()
	}
	for {
		old := t.mask.Load()
		if t.mask.CompareAndSwap(old, old|bitsToSet) {
			return
		}
	}
}

// Disable turns off logging for the given major classes.
func (t *Tracer) Disable(majors ...event.Major) {
	var bitsToClear uint64
	for _, m := range majors {
		bitsToClear |= m.Bit()
	}
	for {
		old := t.mask.Load()
		if t.mask.CompareAndSwap(old, old&^bitsToClear) {
			return
		}
	}
}

// EnableAll enables every major class.
func (t *Tracer) EnableAll() { t.mask.Store(^uint64(0)) }

// DisableAll disables all tracing; trace points reduce to the mask check.
func (t *Tracer) DisableAll() { t.mask.Store(0) }

// ApplyMask installs a new trace mask and stamps the moment it took effect
// into every CPU's event stream with a MajorControl/CtrlMaskChange event
// (payload: new mask, previous mask). This is the runtime control-plane
// entry point: unlike SetMask, which flips the atomic silently, ApplyMask
// leaves an in-band record so analyses can tell "the mask narrowed" from
// "the workload went quiet".
//
// The MajorControl bit is always forced on in the applied mask: control
// events (anchors, fillers, mask markers) are what keep a stream decodable
// and epoch-annotated, so the control plane never disables them. This also
// keeps ApplyMask compatible with Quiesce's drain: begin() re-checks the
// mask after raising inflight, so disabled majors stop reserving the
// instant the swap lands.
//
// Per CPU the marker is logged only after that CPU's in-flight loggers
// have been observed at zero. A logger that starts after the swap sees the
// new mask (begin()'s re-check), and a logger observed in flight completed
// before the marker's reservation — so on each CPU, every event reserved
// after the marker is governed by the new mask (until a later ApplyMask).
// Events of a newly disabled major therefore never land after its marker.
//
// Concurrent ApplyMask calls are serialized. Like the other mask setters
// it must not race Stop, and — like Quiesce — it requires the consumer to
// keep draining Sealed if a logger is blocked on a full ring (OnFull:
// Block). It returns the previous mask.
func (t *Tracer) ApplyMask(newMask uint64) (old uint64) {
	newMask |= event.MajorControl.Bit()
	t.maskMu.Lock()
	defer t.maskMu.Unlock()
	old = t.mask.Swap(newMask)
	if old == newMask {
		return old
	}
	t.maskApplies.Add(1)
	// Parked per-P batches hold their openers in flight; close them (and
	// hold the shard claims) or the quiescence waits below would never
	// see zero under a steady PLog load.
	t.pauseBatches()
	for i := range t.cpus {
		// The wait is a sampling race: inflight is only zero in the gaps
		// between logging calls (the new mask still enables them); the
		// arena's quiescence wait backs off to real sleeps so it cannot
		// starve on GOMAXPROCS=1.
		t.cpus[i].a.WaitQuiescent()
		t.CPU(i).Log2(event.MajorControl, event.CtrlMaskChange, newMask, old)
	}
	t.resumeBatches()
	return old
}

// MaskApplies returns the number of ApplyMask calls that changed the mask.
func (t *Tracer) MaskApplies() uint64 { return t.maskApplies.Load() }

// --- CPU handles -----------------------------------------------------------

// CPU is a logging handle bound to one processor slot. Handles are
// obtained once and reused; logging through a handle touches only that
// CPU's control structures. The handle corresponds to the user-mapped
// per-processor control structure of the paper: applications and kernel
// code log through it directly, with no system call.
type CPU struct {
	ctl *TrcCtl
}

// CPU returns the logging handle for processor slot i.
func (t *Tracer) CPU(i int) CPU { return CPU{ctl: t.cpus[i]} }

// Tracer returns the owning tracer.
func (c CPU) Tracer() *Tracer { return c.ctl.t }

// ID returns the processor slot number.
func (c CPU) ID() int { return c.ctl.cpu }

// Enabled mirrors Tracer.Enabled for use on hot paths that already hold a
// handle.
func (c CPU) Enabled(m event.Major) bool { return c.ctl.t.Enabled(m) }
