package core

import "k42trace/internal/event"

// Redact implements the protection model sketched in the paper's future
// work: "all data is logged to a single shared buffer ... different users
// may not desire to have information about their behavior available to
// other users. To solve this, we intend to map in different buffers to
// user applications that do not have sufficient privileges to see all
// data." Redact produces a copy of a buffer in which every event whose
// major class is outside the viewer's visibility mask is replaced by a
// filler event of identical length, so:
//
//   - the buffer's alignment, random-access, and timestamp properties are
//     preserved (tools work unchanged on the redacted view);
//   - nothing about hidden events leaks except that *some* event of that
//     length occupied the slot (and fillers merge that into padding).
//
// Infrastructure events (MajorControl: anchors, fillers) are always
// visible — without the clock anchors the buffer would be undecodable.
// Garbled regions are zeroed rather than copied, since unparseable bytes
// cannot be classified.
func Redact(words []uint64, visible uint64) []uint64 {
	out := make([]uint64, len(words))
	pos := 0
	for pos < len(words) {
		h := event.Header(words[pos])
		if !h.WellFormed() || pos+h.Len() > len(words) {
			// Unclassifiable garble: scrub it.
			out[pos] = 0
			pos++
			continue
		}
		l := h.Len()
		if h.Major() == event.MajorControl || h.Major().Bit()&visible != 0 {
			copy(out[pos:pos+l], words[pos:pos+l])
		} else {
			// Same length, same timestamp, but a filler: the stream stays
			// decodable and time-monotone while the payload disappears.
			out[pos] = uint64(event.MakeHeader(h.Timestamp(), l,
				event.MajorControl, event.CtrlFiller))
		}
		pos += l
	}
	return out
}

// RedactSealed returns a redacted copy of a sealed buffer for delivery to
// a consumer with limited visibility. The original is not modified.
func RedactSealed(s Sealed, visible uint64) Sealed {
	s.Words = Redact(s.Words, visible)
	return s
}

// VisibleMask builds a visibility mask from major classes, for use with
// Redact (it is the same bit layout as the trace mask).
func VisibleMask(majors ...event.Major) uint64 {
	var m uint64
	for _, mj := range majors {
		m |= mj.Bit()
	}
	return m
}
