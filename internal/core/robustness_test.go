package core

import (
	"testing"
	"testing/quick"

	"k42trace/internal/event"
)

// The paper's tools must keep working on arbitrary garbage ("our tools
// have ways of handling this situation"); these properties pin that down:
// no input may panic a decoder, and resynchronization must terminate.

func TestDecodeBufferNeverPanicsOnRandomWords(t *testing.T) {
	f := func(words []uint64) bool {
		evs, st := DecodeBuffer(0, words)
		// Conservation: every word is consumed exactly once as event
		// content, filler, or skipped garble.
		consumed := st.FillerWords + st.SkippedWords
		for _, e := range evs {
			if !e.Header.IsFiller() {
				consumed += e.Words()
			}
		}
		return consumed == len(words)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeBufferOnAllSameWord(t *testing.T) {
	for _, w := range []uint64{0, ^uint64(0), 0x0000040000000000} {
		words := make([]uint64, 256)
		for i := range words {
			words[i] = w
		}
		evs, st := DecodeBuffer(0, words)
		_ = evs
		_ = st
	}
}

func TestRedactNeverPanicsAndPreservesLength(t *testing.T) {
	f := func(words []uint64, visible uint64) bool {
		out := Redact(words, visible)
		if len(out) != len(words) {
			return false
		}
		// Redacted output must itself decode without panicking, and must
		// contain no event whose major is hidden (Control excepted).
		evs, _ := DecodeBuffer(0, out)
		for _, e := range evs {
			m := e.Major()
			if m != event.MajorControl && m.Bit()&visible == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRecorderRandomIndex(t *testing.T) {
	// Any index value against a fixed-geometry memory image must decode
	// without panicking.
	buf := make([]uint64, 64*4)
	for i := range buf {
		buf[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	f := func(index uint64) bool {
		DecodeRecorder(0, buf, index, 64, 4)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: for any sequence of event sizes, the sum of logged words,
// filler words, and anchor words exactly accounts for the index advance —
// no space is lost or double-counted by the reservation algorithm.
func TestReservationAccountingProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		tr := MustNew(Config{CPUs: 1, BufWords: 64, NumBufs: 4})
		tr.EnableAll()
		c := tr.CPU(0)
		payload := make([]uint64, 61)
		for _, s := range sizes {
			c.LogWords(event.MajorTest, 1, payload[:int(s)%8])
		}
		st := tr.Stats()
		idx := tr.cpus[0].a.Index()
		return st.Words+st.FillerWords+st.Anchors*anchorWords == idx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
