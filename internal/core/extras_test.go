package core

import (
	"bytes"
	"testing"

	"k42trace/internal/clock"
	"k42trace/internal/event"
)

// --- ZeroFill -----------------------------------------------------------------

func TestZeroFillRequiresStreamMode(t *testing.T) {
	if _, err := New(Config{CPUs: 1, BufWords: 64, NumBufs: 2, ZeroFill: true}); err == nil {
		t.Error("ZeroFill in flight-recorder mode should be rejected")
	}
}

func TestZeroFillScrubsRecycledBuffers(t *testing.T) {
	run := func(zero bool) (staleWords int) {
		tr := MustNew(Config{CPUs: 1, BufWords: 32, NumBufs: 2, Mode: Stream,
			ZeroFill: zero, Clock: clock.NewManual(1)})
		tr.EnableAll()
		done, stop := collect(tr)
		c := tr.CPU(0)
		// Fill several generations with recognizable payloads, then stop
		// mid-buffer: the current buffer's unused tail is previous-
		// generation memory unless zero-filled at release.
		for i := 0; i < 60; i++ {
			c.Log1(event.MajorTest, 1, 0xDEAD0000+uint64(i))
		}
		stop()
		<-done
		// Inspect the slot holding the final partial buffer: the words
		// past the flush offset are the recycled remains.
		a := tr.cpus[0].a
		idx := a.Index()
		off := idx & 31
		lo := (idx - off) & tr.indexMask
		for i := lo + off; i < lo+32; i++ {
			if a.Buf()[i] != 0 {
				staleWords++
			}
		}
		return staleWords
	}
	if s := run(false); s == 0 {
		t.Error("without ZeroFill, recycled buffers should retain stale words (test premise)")
	}
	if s := run(true); s != 0 {
		t.Errorf("with ZeroFill, %d stale words survived recycling", s)
	}
}

// --- Crash dump ----------------------------------------------------------------

func TestCrashDumpRoundTrip(t *testing.T) {
	tr, _ := newFR(t, 2, 64, 4)
	tr.EnableAll()
	for i := 0; i < 300; i++ {
		tr.CPU(i%2).Log1(event.MajorTest, 1, uint64(i))
	}
	var buf bytes.Buffer
	if err := tr.WriteCrashDump(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := ReadCrashDump(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d.CPUs != 2 || d.BufWords != 64 || d.NumBufs != 4 || d.ClockHz != 1e9 {
		t.Fatalf("geometry %+v", d)
	}
	// The dump must decode to exactly what a live Dump sees.
	for cpu := 0; cpu < 2; cpu++ {
		live, liveInfo := tr.Dump(cpu)
		dead, deadInfo, err := d.Events(cpu)
		if err != nil {
			t.Fatal(err)
		}
		if len(live) != len(dead) {
			t.Fatalf("cpu %d: crash dump has %d events, live dump %d", cpu, len(dead), len(live))
		}
		for i := range live {
			if live[i].Header != dead[i].Header || live[i].Time != dead[i].Time {
				t.Fatalf("cpu %d event %d differs", cpu, i)
			}
		}
		if deadInfo.Anomalies != liveInfo.Anomalies {
			t.Errorf("cpu %d anomalies: %d vs %d", cpu, deadInfo.Anomalies, liveInfo.Anomalies)
		}
	}
	// AllEvents covers every CPU.
	evs, infos, err := d.AllEvents()
	if err != nil || len(evs) != 2 || len(infos) != 2 {
		t.Fatalf("AllEvents: %v", err)
	}
}

func TestCrashDumpDetectsKilledWriter(t *testing.T) {
	tr, _ := newFR(t, 1, 32, 2)
	tr.EnableAll()
	c := tr.CPU(0)
	c.Log1(event.MajorTest, 1, 1)
	c.ReserveOnly(event.MajorTest, 2, 3) // reserved, never written
	c.Log1(event.MajorTest, 3, 3)
	var buf bytes.Buffer
	if err := tr.WriteCrashDump(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := ReadCrashDump(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	_, info, err := d.Events(0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Anomalies == 0 {
		t.Error("crash dump should flag the commit-count shortfall")
	}
	if info.Stats.SkippedWords == 0 {
		t.Error("decoder should skip the unwritten hole")
	}
}

func TestCrashDumpRejectsCorrupt(t *testing.T) {
	if _, err := ReadCrashDump(bytes.NewReader([]byte("not a dump at all........."))); err == nil {
		t.Error("garbage accepted as crash dump")
	}
	tr, _ := newFR(t, 1, 64, 2)
	var buf bytes.Buffer
	if err := tr.WriteCrashDump(&buf); err != nil {
		t.Fatal(err)
	}
	// Truncate mid-memory.
	cut := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadCrashDump(bytes.NewReader(cut)); err == nil {
		t.Error("truncated dump accepted")
	}
	// Corrupt version.
	b := append([]byte(nil), buf.Bytes()...)
	b[8] = 9
	if _, err := ReadCrashDump(bytes.NewReader(b)); err == nil {
		t.Error("bad version accepted")
	}
}

// --- Redaction -----------------------------------------------------------------

func TestRedactHidesOnlyInvisibleMajors(t *testing.T) {
	tr, _ := newFR(t, 1, 128, 2)
	tr.EnableAll()
	c := tr.CPU(0)
	c.Log1(event.MajorMem, 1, 0x1111)
	c.Log2(event.MajorUser, 2, 0x2222, 0x3333)
	c.Log1(event.MajorMem, 3, 0x4444)
	c.Log0(event.MajorIO, 4)
	old := tr.Quiesce()
	defer tr.SetMask(old)
	idx := tr.cpus[0].a.Index()
	words := tr.cpus[0].a.Buf()[:idx]

	red := Redact(words, VisibleMask(event.MajorMem))
	evs, st := DecodeBuffer(0, red)
	if st.Garbled() {
		t.Fatalf("redacted buffer garbled: %+v", st)
	}
	var visible []event.Event
	for _, e := range evs {
		if e.Major() != event.MajorControl {
			visible = append(visible, e)
		}
	}
	if len(visible) != 2 {
		t.Fatalf("got %d visible events, want 2 MEM events", len(visible))
	}
	for _, e := range visible {
		if e.Major() != event.MajorMem {
			t.Errorf("leaked event %v", e.Header)
		}
	}
	// Hidden payloads must not appear anywhere in the redacted words.
	for _, w := range red {
		if w == 0x2222 || w == 0x3333 {
			t.Fatal("hidden payload leaked through redaction")
		}
	}
	// Alignment preserved: redacted buffer has the same length and the
	// same event-boundary structure (total decoded words match).
	if len(red) != len(words) {
		t.Fatal("redaction changed buffer size")
	}
	// Timestamps stay monotone.
	var prev uint64
	for _, e := range evs {
		if e.Time < prev {
			t.Fatal("redaction broke timestamp monotonicity")
		}
		prev = e.Time
	}
}

func TestRedactScrubsGarble(t *testing.T) {
	words := []uint64{
		uint64(event.MakeHeader(1, 2, event.MajorUser, 1)), 0xAAAA,
		0xffffffffffffffff, // garble (length field = max, overruns)
		uint64(event.MakeHeader(2, 1, event.MajorMem, 2)),
	}
	red := Redact(words, VisibleMask(event.MajorMem))
	if red[2] != 0 {
		t.Errorf("garble word not scrubbed: %x", red[2])
	}
	if red[1] == 0xAAAA {
		t.Error("hidden payload survived")
	}
}

func TestRedactSealedCopies(t *testing.T) {
	orig := Sealed{Words: []uint64{
		uint64(event.MakeHeader(1, 2, event.MajorUser, 1)), 0xBEEF,
	}}
	red := RedactSealed(orig, 0)
	if orig.Words[1] != 0xBEEF {
		t.Error("redaction modified the original")
	}
	if red.Words[1] == 0xBEEF {
		t.Error("redacted copy retains payload")
	}
}

func TestVisibleMask(t *testing.T) {
	m := VisibleMask(event.MajorMem, event.MajorIO)
	if m != event.MajorMem.Bit()|event.MajorIO.Bit() {
		t.Errorf("mask %x", m)
	}
}

// --- DecodeRecorder edge cases ---------------------------------------------------

func TestDecodeRecorderEdges(t *testing.T) {
	if evs, info := DecodeRecorder(0, nil, 0, 64, 2); evs != nil || info.Buffers != 0 {
		t.Error("empty recorder should decode to nothing")
	}
	if evs, _ := DecodeRecorder(0, make([]uint64, 128), 10, 64, 4); evs != nil {
		t.Error("mismatched geometry should decode to nothing")
	}
}
