package core

import (
	"runtime"
	"sync"
	"testing"

	"k42trace/internal/clock"
	"k42trace/internal/event"
)

// collect consumes the Sealed channel until it closes, copying buffer
// contents (since Release recycles them) and returning the raw words per
// (cpu, seq) in order.
type collected struct {
	cpu   int
	seq   uint64
	words []uint64
	anom  bool
	part  bool
}

func collect(tr *Tracer) (<-chan []collected, func()) {
	done := make(chan []collected, 1)
	go func() {
		var out []collected
		for s := range tr.Sealed() {
			w := make([]uint64, len(s.Words))
			copy(w, s.Words)
			out = append(out, collected{cpu: s.CPU, seq: s.Seq, words: w,
				anom: s.Anomalous(), part: s.Partial})
			tr.Release(s)
		}
		done <- out
	}()
	return done, tr.Stop
}

func TestStreamSealsInOrder(t *testing.T) {
	tr := MustNew(Config{CPUs: 1, BufWords: 64, NumBufs: 4, Mode: Stream,
		Clock: clock.NewManual(1)})
	tr.EnableAll()
	done, stop := collect(tr)
	c := tr.CPU(0)
	const n = 300
	for i := 0; i < n; i++ {
		c.Log1(event.MajorTest, 1, uint64(i))
	}
	stop()
	bufs := <-done
	if len(bufs) == 0 {
		t.Fatal("no sealed buffers")
	}
	var next uint64
	var payloads []uint64
	for _, b := range bufs {
		if b.seq != next {
			t.Fatalf("seq %d, want %d", b.seq, next)
		}
		next++
		if b.anom {
			t.Fatalf("unexpected anomaly in seq %d", b.seq)
		}
		evs, st := DecodeBuffer(b.cpu, b.words)
		if st.Garbled() {
			t.Fatalf("garbled buffer %d", b.seq)
		}
		if len(evs) == 0 || evs[0].Minor() != event.CtrlClockAnchor {
			t.Fatalf("buffer %d does not start with clock anchor", b.seq)
		}
		for _, e := range evs {
			if e.Major() == event.MajorTest {
				payloads = append(payloads, e.Data[0])
			}
		}
	}
	if len(payloads) != n {
		t.Fatalf("got %d events, want %d (lossless Block mode)", len(payloads), n)
	}
	for i, p := range payloads {
		if p != uint64(i) {
			t.Fatalf("payload %d = %d", i, p)
		}
	}
	// Last buffer should be the flush partial.
	if !bufs[len(bufs)-1].part {
		t.Error("expected trailing partial from flush")
	}
}

func TestStreamBlockIsLossless(t *testing.T) {
	tr := MustNew(Config{CPUs: 4, BufWords: 64, NumBufs: 2, Mode: Stream, OnFull: Block})
	tr.EnableAll()
	done, stop := collect(tr)
	const per = 2000
	var wg sync.WaitGroup
	for cpu := 0; cpu < 4; cpu++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			c := tr.CPU(cpu)
			for i := 0; i < per; i++ {
				for !c.Log2(event.MajorTest, 1, uint64(cpu), uint64(i)) {
					t.Error("Block mode must not drop")
					return
				}
			}
		}(cpu)
	}
	wg.Wait()
	stop()
	bufs := <-done
	got := map[int]int{}
	for _, b := range bufs {
		evs, st := DecodeBuffer(b.cpu, b.words)
		if st.Garbled() {
			t.Fatalf("garbled buffer cpu %d seq %d", b.cpu, b.seq)
		}
		for _, e := range evs {
			if e.Major() == event.MajorTest {
				got[int(e.Data[0])]++
			}
		}
	}
	for cpu := 0; cpu < 4; cpu++ {
		if got[cpu] != per {
			t.Errorf("cpu %d: got %d events, want %d", cpu, got[cpu], per)
		}
	}
	if tr.Stats().Dropped != 0 {
		t.Errorf("Dropped = %d in Block mode", tr.Stats().Dropped)
	}
}

func TestStreamDropPolicyDoesNotBlock(t *testing.T) {
	// No consumer at all: with Drop policy the writer must keep returning
	// promptly, dropping once all buffers are pending.
	tr := MustNew(Config{CPUs: 1, BufWords: 32, NumBufs: 2, Mode: Stream, OnFull: Drop})
	tr.EnableAll()
	c := tr.CPU(0)
	for i := 0; i < 500; i++ {
		c.Log1(event.MajorTest, 1, uint64(i))
	}
	st := tr.Stats()
	if st.Dropped == 0 {
		t.Error("expected drops with no consumer")
	}
	if st.Events+st.Dropped != 500 {
		t.Errorf("events %d + dropped %d != 500", st.Events, st.Dropped)
	}
}

// TestStopUnblocksWritersWaitingOnFullBuffers: with a dead consumer,
// writers under the Block policy spin waiting for a slot; Stop must make
// them bail out (returning false) rather than wedging shutdown.
func TestStopUnblocksWritersWaitingOnFullBuffers(t *testing.T) {
	tr := MustNew(Config{CPUs: 1, BufWords: 32, NumBufs: 2, Mode: Stream,
		OnFull: Block})
	tr.EnableAll()
	writerDone := make(chan int)
	go func() {
		c := tr.CPU(0)
		logged := 0
		for i := 0; i < 10_000; i++ {
			if !c.Log1(event.MajorTest, 1, uint64(i)) {
				break // dropped during shutdown
			}
			logged++
		}
		writerDone <- logged
	}()
	// Give the writer time to fill both buffers and start blocking, then
	// stop the tracer; the writer must finish promptly.
	for tr.Stats().BlockWaits == 0 {
		runtime.Gosched()
	}
	tr.Stop()
	logged := <-writerDone
	if logged == 0 || logged == 10_000 {
		t.Fatalf("writer logged %d events; expected to be cut off mid-run", logged)
	}
	if tr.Stats().Dropped == 0 {
		t.Error("shutdown should count the dropped event")
	}
}

func TestC8GarbleDetection(t *testing.T) {
	// Inject the paper's failure: a writer reserves space but is "killed"
	// before logging. The buffer's commit count comes up short and the
	// write-out path reports the anomaly.
	tr := MustNew(Config{CPUs: 1, BufWords: 32, NumBufs: 2, Mode: Stream,
		Clock: clock.NewManual(1)})
	tr.EnableAll()
	done, stop := collect(tr)
	c := tr.CPU(0)
	c.Log1(event.MajorTest, 1, 7)
	if !c.ReserveOnly(event.MajorTest, 2, 3) {
		t.Fatal("ReserveOnly failed")
	}
	c.Log1(event.MajorTest, 3, 9)
	stop()
	bufs := <-done
	if len(bufs) == 0 {
		t.Fatal("no buffers flushed")
	}
	anom := 0
	for _, b := range bufs {
		if b.anom {
			anom++
			// The reserved-but-never-written region decodes as garble (the
			// words are zero) and the decoder resynchronizes past it.
			evs, st := DecodeBuffer(b.cpu, b.words)
			if st.SkippedWords == 0 {
				t.Error("expected skipped words in garbled buffer")
			}
			// The events logged after the hole must still be recovered.
			found := false
			for _, e := range evs {
				if e.Major() == event.MajorTest && e.Minor() == 3 {
					found = true
				}
			}
			if !found {
				t.Error("event after garbled hole not recovered")
			}
		}
	}
	if anom != 1 {
		t.Errorf("anomalous buffers = %d, want 1", anom)
	}
}

func TestFlushOnlyInStreamMode(t *testing.T) {
	tr, _ := newFR(t, 1, 64, 2)
	tr.EnableAll()
	tr.CPU(0).Log0(event.MajorTest, 1)
	tr.Flush() // no-op in flight-recorder mode; must not panic or push
	select {
	case s := <-tr.Sealed():
		t.Fatalf("unexpected sealed buffer %v", s.Seq)
	default:
	}
}

func TestReleasePartialIsNoop(t *testing.T) {
	tr := MustNew(Config{CPUs: 1, BufWords: 64, NumBufs: 2, Mode: Stream})
	tr.EnableAll()
	tr.CPU(0).Log0(event.MajorTest, 1)
	tr.Stop()
	for s := range tr.Sealed() {
		if s.Partial {
			tr.Release(s) // must not corrupt slot state
		}
	}
}

func TestSealedChannelClosesAfterStop(t *testing.T) {
	tr := MustNew(Config{CPUs: 2, BufWords: 64, NumBufs: 2, Mode: Stream})
	tr.EnableAll()
	tr.CPU(0).Log0(event.MajorTest, 1)
	tr.Stop()
	n := 0
	for range tr.Sealed() {
		n++
	}
	if n != 1 {
		t.Errorf("expected exactly 1 flushed partial, got %d", n)
	}
}

func TestStreamMultiCPUIndependentSeqs(t *testing.T) {
	tr := MustNew(Config{CPUs: 3, BufWords: 32, NumBufs: 4, Mode: Stream,
		Clock: clock.NewManual(1)})
	tr.EnableAll()
	done, stop := collect(tr)
	for cpu := 0; cpu < 3; cpu++ {
		c := tr.CPU(cpu)
		for i := 0; i < 100; i++ {
			c.Log1(event.MajorTest, 1, uint64(i))
		}
	}
	stop()
	bufs := <-done
	nextSeq := map[int]uint64{}
	for _, b := range bufs {
		if b.seq != nextSeq[b.cpu] {
			t.Fatalf("cpu %d: seq %d want %d", b.cpu, b.seq, nextSeq[b.cpu])
		}
		nextSeq[b.cpu]++
	}
	for cpu := 0; cpu < 3; cpu++ {
		if nextSeq[cpu] == 0 {
			t.Errorf("cpu %d produced no buffers", cpu)
		}
	}
}
