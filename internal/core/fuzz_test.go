package core

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"k42trace/internal/clock"
	"k42trace/internal/event"
)

var updateFuzzSeeds = flag.Bool("updatefuzzseeds", false,
	"regenerate the checked-in fuzz seed corpus under testdata/fuzz")

// FuzzDecodeBlock throws arbitrary bytes at the buffer decoder — the
// first consumer of every damaged trace. Whatever the input, decode must
// not panic, and it must conserve words: every word in the buffer is part
// of a decoded event, counted as filler, or reported skipped. That
// conservation law is what lets salvage turn skip counts into exact
// data-loss figures.
func FuzzDecodeBlock(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 64))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Fuzz(func(t *testing.T, b []byte) {
		words := make([]uint64, len(b)/8)
		for i := range words {
			words[i] = binary.LittleEndian.Uint64(b[8*i:])
		}
		evs, st := DecodeBuffer(0, words)
		sum := st.FillerWords + st.SkippedWords
		for i := range evs {
			sum += evs[i].Words()
		}
		if sum != len(words) {
			t.Fatalf("word conservation broken: %d events + %d filler + %d skipped = %d words, buffer has %d",
				len(evs), st.FillerWords, st.SkippedWords, sum, len(words))
		}
		if st.Events != len(evs) {
			t.Fatalf("stats count %d events, decode returned %d", st.Events, len(evs))
		}
		// The flight-recorder reconstruction must survive the same bytes.
		if len(words) >= 16 {
			DecodeRecorder(0, words[:16], words[0]%1024, 4, 4)
		}
	})
}

// TestFuzzSeedCorpus keeps the checked-in seed corpus honest: run with
// -updatefuzzseeds it rewrites testdata/fuzz from a real sealed buffer
// (clean, garbled, and hole variants); without the flag it verifies the
// seeds exist so the CI fuzz smoke job never starts from nothing.
func TestFuzzSeedCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeBlock")
	if !*updateFuzzSeeds {
		ents, err := os.ReadDir(dir)
		if err != nil || len(ents) == 0 {
			t.Fatalf("seed corpus missing (run go test -updatefuzzseeds ./internal/core/): %v", err)
		}
		return
	}
	words := sealedBufferWords(t)
	clean := wordBytes(words)
	garbled := append([]byte(nil), clean...)
	garbled[9] ^= 0x40 // damage the first event header
	hole := append([]byte(nil), clean...)
	for i := 40; i < 120 && i < len(hole); i++ {
		hole[i] = 0 // a zero-filled dead reservation
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{
		"sealed-clean": clean, "sealed-garbled": garbled, "sealed-hole": hole,
	} {
		writeSeed(t, filepath.Join(dir, name), data)
	}
}

// sealedBufferWords captures one full sealed buffer from a live tracer.
func sealedBufferWords(t *testing.T) []uint64 {
	t.Helper()
	tr := MustNew(Config{CPUs: 1, BufWords: 64, NumBufs: 4, Mode: Stream,
		Clock: clock.NewManual(1)})
	tr.EnableAll()
	done, stop := collect(tr)
	c := tr.CPU(0)
	for i := 0; i < 100; i++ {
		c.Log2(event.MajorTest, 2, uint64(i), uint64(i)*3)
	}
	stop()
	for _, b := range <-done {
		if !b.part {
			return b.words
		}
	}
	t.Fatal("no full buffer sealed")
	return nil
}

func wordBytes(words []uint64) []byte {
	b := make([]byte, 8*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint64(b[8*i:], w)
	}
	return b
}

// writeSeed stores data as a Go fuzzing corpus file.
func writeSeed(t *testing.T, path string, data []byte) {
	t.Helper()
	body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}
