package faultinject

import (
	"fmt"
	"math/rand"

	"k42trace/internal/stream"
)

// Image corrupts a complete trace file held in memory. It parses the file
// header once to learn the block geometry, then applies targeted,
// seeded damage: the file-side faults of the injection matrix (bit-flipped
// headers, garbled payloads, zero-filled regions, torn writes, truncated
// tails). The original bytes are copied, never modified.
type Image struct {
	data []byte
	meta stream.Meta
	geo  stream.Geometry
	rng  *rand.Rand
	log  []string
}

// OpenImage copies a trace file's bytes and prepares them for corruption.
func OpenImage(data []byte, seed int64) (*Image, error) {
	meta, err := stream.ParseFileHeader(data)
	if err != nil {
		return nil, fmt.Errorf("faultinject: %w", err)
	}
	return &Image{
		data: append([]byte(nil), data...),
		meta: meta,
		geo:  meta.Geometry(),
		rng:  rand.New(rand.NewSource(seed)),
	}, nil
}

// Bytes returns the (possibly corrupted) file image.
func (im *Image) Bytes() []byte { return im.data }

// Meta returns the file metadata parsed at open.
func (im *Image) Meta() stream.Meta { return im.meta }

// NumBlocks returns the number of whole blocks currently in the image.
func (im *Image) NumBlocks() int {
	return (len(im.data) - im.geo.FileHeaderBytes) / im.geo.BlockBytes
}

// Log returns a human-readable line per fault applied, for reports.
func (im *Image) Log() []string { return im.log }

func (im *Image) blockOff(k int) int { return im.geo.FileHeaderBytes + k*im.geo.BlockBytes }

// CorruptFileHeader flips one random bit in the file header's meaningful
// leading words (magic, version, geometry), destroying the reader's
// bootstrap information and forcing salvage onto geometry recovery.
func (im *Image) CorruptFileHeader() {
	bit := flipBit(im.rng, im.data, 0, 24)
	note(&im.log, "file header: flipped bit %d", bit)
}

// CorruptBlockMagic flips one random bit in block k's magic word. Any
// single-bit change breaks the magic, so this guarantees quarantine of
// exactly block k.
func (im *Image) CorruptBlockMagic(k int) {
	off := im.blockOff(k)
	bit := flipBit(im.rng, im.data, off, off+8)
	note(&im.log, "block %d: flipped magic bit %d", k, bit-off*8)
}

// FlipBlockHeaderBit flips one random bit anywhere in block k's header —
// magic, cpu/flags/word-count, sequence, or commit count. Unlike
// CorruptBlockMagic the damage may instead surface as an implausible
// header field, a phantom sequence gap, or a commit-count anomaly.
func (im *Image) FlipBlockHeaderBit(k int) {
	off := im.blockOff(k)
	bit := flipBit(im.rng, im.data, off, off+im.geo.BlockHeaderBytes)
	note(&im.log, "block %d: flipped header bit %d", k, bit-off*8)
}

// FlipPayloadBits flips n random bits in block k's payload, garbling
// events the decoder must skip past.
func (im *Image) FlipPayloadBits(k, n int) {
	lo := im.blockOff(k) + im.geo.BlockHeaderBytes
	hi := im.blockOff(k) + im.geo.BlockBytes
	for i := 0; i < n; i++ {
		flipBit(im.rng, im.data, lo, hi)
	}
	note(&im.log, "block %d: flipped %d payload bits", k, n)
}

// ZeroPayload zero-fills `words` words of block k's payload starting at a
// seeded offset — a hole such as a lost page of a memory-mapped buffer.
func (im *Image) ZeroPayload(k, words int) {
	if words > im.meta.BufWords {
		words = im.meta.BufWords
	}
	start := im.rng.Intn(im.meta.BufWords - words + 1)
	lo := im.blockOff(k) + im.geo.BlockHeaderBytes + start*8
	for i := 0; i < words*8; i++ {
		im.data[lo+i] = 0
	}
	note(&im.log, "block %d: zeroed %d words at word %d", k, words, start)
}

// TearBlock simulates a torn block write: the first keepWords payload
// words of block k reached the disk, the rest is zero. keepWords < 0
// picks a seeded tear point.
func (im *Image) TearBlock(k, keepWords int) {
	if keepWords < 0 {
		keepWords = im.rng.Intn(im.meta.BufWords)
	}
	lo := im.blockOff(k) + im.geo.BlockHeaderBytes + keepWords*8
	hi := im.blockOff(k) + im.geo.BlockBytes
	for i := lo; i < hi; i++ {
		im.data[i] = 0
	}
	note(&im.log, "block %d: torn after %d words", k, keepWords)
}

// TruncateTail removes the final n bytes of the image — a copy or
// transfer that stopped early.
func (im *Image) TruncateTail(n int) {
	if n > len(im.data) {
		n = len(im.data)
	}
	im.data = im.data[:len(im.data)-n]
	note(&im.log, "truncated %d tail bytes", n)
}

// TruncateMidFinalBlock cuts the file at a seeded point strictly inside
// the last block, after its header — the classic crashed-collector file.
// It returns the number of bytes removed.
func (im *Image) TruncateMidFinalBlock() int {
	last := im.NumBlocks() - 1
	lo := im.blockOff(last) + im.geo.BlockHeaderBytes + 8
	hi := im.blockOff(last) + im.geo.BlockBytes
	cut := lo + im.rng.Intn(hi-lo)
	cut -= cut % 8 // keep the surviving tail word-aligned
	n := len(im.data) - cut
	im.data = im.data[:cut]
	note(&im.log, "truncated mid final block: cut %d bytes at offset %d", n, cut)
	return n
}
