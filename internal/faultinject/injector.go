package faultinject

import (
	"fmt"
	"io"
	"math/rand"

	"k42trace/internal/stream"
)

// StreamFaults configures an Injector. Probabilities are per block and
// independent; zero values inject nothing of that kind.
type StreamFaults struct {
	Seed int64
	// DropProb drops a block entirely — a lossy relay.
	DropProb float64
	// DupProb delivers a block twice — a retrying relay.
	DupProb float64
	// ReorderWindow > 1 buffers that many surviving blocks and emits each
	// window in a seeded permutation — out-of-order delivery.
	ReorderWindow int
	// TearProb zeroes the tail of a block's payload from a seeded point —
	// a torn write in transit.
	TearProb float64
	// FlipProb flips one random bit anywhere in a block (header or
	// payload).
	FlipProb float64
	// ZeroProb zero-fills a seeded span of a block's payload.
	ZeroProb float64
	// CorruptFileHeader flips one bit in the stream's file header as it
	// passes, destroying the collector's bootstrap metadata.
	CorruptFileHeader bool
}

// Stats counts the faults an Injector actually injected.
type Stats struct {
	Blocks     int // blocks that entered the injector
	Dropped    int
	Duplicated int
	Torn       int
	Flipped    int
	Zeroed     int
	// Reordered counts blocks emitted at a different position than they
	// arrived at within their window.
	Reordered int
}

// Injector wraps an io.Writer carrying the trace wire format (the output
// of stream.Writer / stream.Capture, the input of a relay collector) and
// corrupts blocks in flight. It chunks arbitrary Write calls into
// whole blocks using the geometry from the passing file header, so it can
// sit anywhere in a transport path. Call Flush after the producer
// finishes to drain the reorder window; any trailing partial block is
// forwarded as-is (a torn transfer for the consumer to cope with).
//
// If the leading bytes do not parse as a trace header the Injector
// forwards everything unmodified: it corrupts traces, not arbitrary data.
type Injector struct {
	w   io.Writer
	f   StreamFaults
	rng *rand.Rand

	buf         []byte // staging for bytes not yet forming a whole block
	stride      int    // 0 until the header has passed
	passthrough bool
	window      [][]byte
	st          Stats
	err         error
}

// NewInjector returns a seeded injector writing corrupted blocks to w.
func NewInjector(w io.Writer, f StreamFaults) *Injector {
	return &Injector{w: w, f: f, rng: rand.New(rand.NewSource(f.Seed))}
}

// Stats returns the injection counts so far.
func (in *Injector) Stats() Stats { return in.st }

// Write implements io.Writer.
func (in *Injector) Write(p []byte) (int, error) {
	if in.err != nil {
		return 0, in.err
	}
	if in.passthrough {
		n, err := in.w.Write(p)
		in.err = err
		return n, err
	}
	in.buf = append(in.buf, p...)
	if in.stride == 0 {
		const hdrBytes = 64
		if len(in.buf) < hdrBytes {
			return len(p), nil
		}
		meta, err := stream.ParseFileHeader(in.buf[:hdrBytes])
		if err != nil {
			// Not a trace stream: stop interfering.
			in.passthrough = true
			_, werr := in.w.Write(in.buf)
			in.buf = nil
			in.err = werr
			if werr != nil {
				return 0, werr
			}
			return len(p), nil
		}
		if in.f.CorruptFileHeader {
			flipBit(in.rng, in.buf[:hdrBytes], 0, 24)
		}
		if _, err := in.w.Write(in.buf[:hdrBytes]); err != nil {
			in.err = err
			return 0, err
		}
		in.buf = append(in.buf[:0], in.buf[hdrBytes:]...)
		in.stride = meta.Geometry().BlockBytes
	}
	for in.err == nil && len(in.buf) >= in.stride {
		blk := append([]byte(nil), in.buf[:in.stride]...)
		in.buf = append(in.buf[:0], in.buf[in.stride:]...)
		in.block(blk)
	}
	if in.err != nil {
		return 0, in.err
	}
	return len(p), nil
}

// block rolls the fault dice for one whole block and forwards the result.
func (in *Injector) block(b []byte) {
	in.st.Blocks++
	if in.f.DropProb > 0 && in.rng.Float64() < in.f.DropProb {
		in.st.Dropped++
		return
	}
	hdrBytes := 32 // block header: 4 words
	if in.f.TearProb > 0 && in.rng.Float64() < in.f.TearProb {
		keep := hdrBytes + 8*in.rng.Intn((len(b)-hdrBytes)/8)
		for i := keep; i < len(b); i++ {
			b[i] = 0
		}
		in.st.Torn++
	}
	if in.f.FlipProb > 0 && in.rng.Float64() < in.f.FlipProb {
		flipBit(in.rng, b, 0, len(b))
		in.st.Flipped++
	}
	if in.f.ZeroProb > 0 && in.rng.Float64() < in.f.ZeroProb {
		words := (len(b) - hdrBytes) / 8
		span := 1 + in.rng.Intn(words)
		start := hdrBytes + 8*in.rng.Intn(words-span+1)
		for i := start; i < start+span*8; i++ {
			b[i] = 0
		}
		in.st.Zeroed++
	}
	dup := in.f.DupProb > 0 && in.rng.Float64() < in.f.DupProb
	in.emit(b)
	if dup {
		in.st.Duplicated++
		in.emit(b)
	}
}

// emit routes one block through the reorder window (or straight out).
func (in *Injector) emit(b []byte) {
	if in.f.ReorderWindow > 1 {
		in.window = append(in.window, b)
		if len(in.window) >= in.f.ReorderWindow {
			in.drainWindow()
		}
		return
	}
	in.writeOut(b)
}

// drainWindow emits the buffered blocks in a seeded permutation.
func (in *Injector) drainWindow() {
	perm := in.rng.Perm(len(in.window))
	for i, j := range perm {
		if i != j {
			in.st.Reordered++
		}
		in.writeOut(in.window[j])
	}
	in.window = in.window[:0]
}

func (in *Injector) writeOut(b []byte) {
	if in.err != nil {
		return
	}
	if _, err := in.w.Write(b); err != nil {
		in.err = err
	}
}

// Flush drains the reorder window and forwards any trailing partial
// block. Call it once after the producer has written everything.
func (in *Injector) Flush() error {
	if in.err != nil {
		return in.err
	}
	if len(in.window) > 0 {
		in.drainWindow()
	}
	if len(in.buf) > 0 {
		if _, err := in.w.Write(in.buf); err != nil && in.err == nil {
			in.err = err
		}
		in.buf = nil
	}
	return in.err
}

// String summarizes the stats for logs and reports.
func (s Stats) String() string {
	return fmt.Sprintf("blocks=%d dropped=%d duplicated=%d reordered=%d torn=%d flipped=%d zeroed=%d",
		s.Blocks, s.Dropped, s.Duplicated, s.Reordered, s.Torn, s.Flipped, s.Zeroed)
}
