package faultinject

import (
	"bytes"
	"reflect"
	"testing"

	"k42trace/internal/clock"
	"k42trace/internal/core"
	"k42trace/internal/event"
	"k42trace/internal/stream"
)

// capture logs n events on a stream tracer, injecting writer kills via
// wi between them, and returns the trace file bytes. ZeroFill is on —
// without §3.1's zero-fill mitigation a dead reservation's hole keeps
// the buffer's previous generation, which decodes as stale (duplicate)
// events instead of a detectable gap.
func capture(t *testing.T, cpus, n int, wi *WriterInjector) []byte {
	t.Helper()
	tr := core.MustNew(core.Config{
		CPUs: cpus, BufWords: 64, NumBufs: 4,
		Mode: core.Stream, ZeroFill: true, Clock: clock.NewManual(1),
	})
	tr.EnableAll()
	var buf bytes.Buffer
	wait := stream.CaptureAsync(tr, &buf)
	for i := 0; i < n; i++ {
		c := tr.CPU(i % cpus)
		c.Log2(event.MajorTest, 7, uint64(i), uint64(i)*3)
		if wi != nil {
			wi.MaybeKill(c)
		}
	}
	tr.Stop()
	if _, err := wait(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWriterKillsFlagAnomalies drives the paper's §3.1 failure end to
// end: a writer killed between reserve and commit must surface as an
// anomalous block (commit count vs. size) and as skipped words at decode,
// while every committed event still survives.
func TestWriterKillsFlagAnomalies(t *testing.T) {
	wi := NewWriterInjector(WriterFaults{Seed: 1, KillProb: 0.2, MaxPayloadWords: 3})
	data := capture(t, 2, 400, wi)
	if wi.Kills() == 0 {
		t.Fatal("no kills injected at p=0.2 over 400 events")
	}
	rd, err := stream.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	anoms, err := rd.Anomalies()
	if err != nil {
		t.Fatal(err)
	}
	if len(anoms) == 0 {
		t.Error("kills injected but no block flagged anomalous")
	}
	evs, st, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if st.SkippedWords == 0 {
		t.Error("dead reservations left no skipped words")
	}
	got := 0
	for _, e := range evs {
		if e.Major() == event.MajorTest && e.Minor() == 7 {
			got++
		}
	}
	if got != 400 {
		t.Errorf("committed events lost: got %d of 400", got)
	}
}

func TestWriterInjectorDeterministic(t *testing.T) {
	a := capture(t, 2, 300, NewWriterInjector(WriterFaults{Seed: 9, KillProb: 0.1}))
	b := capture(t, 2, 300, NewWriterInjector(WriterFaults{Seed: 9, KillProb: 0.1}))
	if !bytes.Equal(a, b) {
		t.Error("same seed produced different trace bytes")
	}
}

func TestImageDeterminismAndTargeting(t *testing.T) {
	data := capture(t, 2, 300, nil)
	corrupt := func(seed int64) *Image {
		im, err := OpenImage(data, seed)
		if err != nil {
			t.Fatal(err)
		}
		im.CorruptBlockMagic(1)
		im.FlipPayloadBits(2, 4)
		im.ZeroPayload(3, 10)
		im.TearBlock(0, 8)
		return im
	}
	a, b := corrupt(5), corrupt(5)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same seed produced different corruption")
	}
	if len(a.Log()) != 4 {
		t.Errorf("fault log has %d entries, want 4", len(a.Log()))
	}
	if bytes.Equal(a.Bytes(), data) {
		t.Error("corruption changed nothing")
	}
	// Damage must stay inside the targeted blocks: block 4 onward and the
	// file header are untouched by the ops above.
	geo := a.Meta().Geometry()
	tail := geo.FileHeaderBytes + 4*geo.BlockBytes
	if !bytes.Equal(a.Bytes()[tail:], data[tail:]) {
		t.Error("corruption leaked past block 3")
	}
	if !bytes.Equal(a.Bytes()[:geo.FileHeaderBytes], data[:geo.FileHeaderBytes]) {
		t.Error("corruption leaked into the file header")
	}
}

func TestImageTruncateMidFinalBlock(t *testing.T) {
	data := capture(t, 1, 200, nil)
	im, err := OpenImage(data, 3)
	if err != nil {
		t.Fatal(err)
	}
	nblk := im.NumBlocks()
	cut := im.TruncateMidFinalBlock()
	if cut <= 0 || len(im.Bytes()) != len(data)-cut {
		t.Fatalf("cut %d bytes, image %d of %d", cut, len(im.Bytes()), len(data))
	}
	if len(im.Bytes())%8 != 0 {
		t.Error("truncation not word-aligned")
	}
	if im.NumBlocks() != nblk-1 {
		t.Errorf("truncation removed %d whole blocks, want exactly the final partial",
			nblk-im.NumBlocks())
	}
}

// TestInjectorChunkingInvariance: the injector must corrupt identically
// no matter how the producer's Write calls slice the stream.
func TestInjectorChunkingInvariance(t *testing.T) {
	data := capture(t, 2, 500, nil)
	run := func(chunk int) ([]byte, Stats) {
		var out bytes.Buffer
		in := NewInjector(&out, StreamFaults{
			Seed: 11, DropProb: 0.1, DupProb: 0.1, TearProb: 0.05,
			FlipProb: 0.05, ZeroProb: 0.05, ReorderWindow: 3,
		})
		for i := 0; i < len(data); i += chunk {
			end := i + chunk
			if end > len(data) {
				end = len(data)
			}
			if _, err := in.Write(data[i:end]); err != nil {
				t.Fatal(err)
			}
		}
		if err := in.Flush(); err != nil {
			t.Fatal(err)
		}
		return out.Bytes(), in.Stats()
	}
	wantBytes, wantStats := run(len(data))
	if wantStats.Dropped == 0 || wantStats.Duplicated == 0 {
		t.Fatalf("faults not exercised: %v", wantStats)
	}
	for _, chunk := range []int{1, 7, 64, 1000} {
		got, st := run(chunk)
		if !bytes.Equal(got, wantBytes) {
			t.Errorf("chunk=%d: output differs", chunk)
		}
		if st != wantStats {
			t.Errorf("chunk=%d: stats %v != %v", chunk, st, wantStats)
		}
	}
}

// TestInjectorDupReorderIsRepairable: duplication and reordering alone
// lose nothing — salvage must recover the clean stream exactly.
func TestInjectorDupReorderIsRepairable(t *testing.T) {
	data := capture(t, 2, 500, nil)
	rd, err := stream.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	in := NewInjector(&out, StreamFaults{Seed: 4, DupProb: 0.3, ReorderWindow: 4})
	if _, err := in.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	st := in.Stats()
	if st.Duplicated == 0 || st.Reordered == 0 {
		t.Fatalf("faults not exercised: %v", st)
	}
	got, rep, err := stream.Salvage(bytes.NewReader(out.Bytes()), int64(out.Len()), 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DupBlocks != st.Duplicated {
		t.Errorf("salvage dropped %d duplicates, injector made %d", rep.DupBlocks, st.Duplicated)
	}
	if rep.LostBlocks != 0 || rep.BlocksSkipped != 0 {
		t.Errorf("lossless faults reported losses:\n%s", rep)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("salvage recovered %d events, want the clean %d", len(got), len(want))
	}
}

func TestInjectorCorruptFileHeader(t *testing.T) {
	data := capture(t, 2, 300, nil)
	var out bytes.Buffer
	in := NewInjector(&out, StreamFaults{Seed: 8, CorruptFileHeader: true})
	if _, err := in.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := stream.NewReader(bytes.NewReader(out.Bytes()), int64(out.Len())); err == nil {
		t.Fatal("corrupted header still opens strictly")
	}
	_, rep, err := stream.Salvage(bytes.NewReader(out.Bytes()), int64(out.Len()), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.MetaRecovered {
		t.Error("salvage did not need geometry recovery after header corruption")
	}
}

func TestInjectorPassthroughNonTrace(t *testing.T) {
	junk := bytes.Repeat([]byte("not a trace at all "), 40)
	var out bytes.Buffer
	in := NewInjector(&out, StreamFaults{Seed: 1, DropProb: 1})
	if _, err := in.Write(junk); err != nil {
		t.Fatal(err)
	}
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), junk) {
		t.Error("non-trace bytes were modified")
	}
}
