package faultinject_test

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"k42trace/internal/analysis"
	"k42trace/internal/core"
	"k42trace/internal/event"
	"k42trace/internal/faultinject"
	"k42trace/internal/shm"
	"k42trace/internal/stream"
)

// TestMain makes this test binary double as the fault child: re-exec'd
// with the child environment set, it attaches to the shared segment and
// runs its mode instead of the tests.
func TestMain(m *testing.M) {
	faultinject.RunChildIfRequested()
	os.Exit(m.Run())
}

func startAgent(t *testing.T, g shm.Geometry) (*shm.Agent, *bytes.Buffer, func() (stream.CaptureStats, error)) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "seg.shm")
	ag, err := shm.Create(path, g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	wait := stream.CaptureAsync(ag, &buf)
	return ag, &buf, wait
}

func child(t *testing.T, spec faultinject.ChildSpec) *faultinject.Child {
	t.Helper()
	c, err := faultinject.StartChild(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Expect("attached"); err != nil {
		t.Fatal(err)
	}
	return c
}

func decodeAll(t *testing.T, data []byte) ([]event.Event, core.DecodeStats) {
	t.Helper()
	rd, err := stream.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	evs, ds, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return evs, ds
}

// TestCrossProcessGarbleDetection is the end-to-end §3.1 failure: a real
// child process reserves event space in the shared segment and is
// SIGKILLed before logging it. The daemon must write the dead client off
// by pid liveness, seal the garbled buffer with its short commit count,
// flag the block anomalous on write-out, and the readers must skip
// exactly the dead reservation's words — exact loss accounting, nothing
// more quarantined.
func TestCrossProcessGarbleDetection(t *testing.T) {
	ag, buf, wait := startAgent(t, shm.Geometry{CPUs: 1, BufWords: 256, NumBufs: 4, MaxClients: 4})
	seg := ag.Path()

	hang := child(t, faultinject.ChildSpec{
		Mode: faultinject.ModeHang, Segment: seg, CPU: 0, Payload: 3,
	})
	line, err := hang.Expect("hung")
	if err != nil {
		t.Fatal(err)
	}
	holeWords, err := faultinject.Field(line, "words")
	if err != nil {
		t.Fatal(err)
	}
	if holeWords != 4 {
		t.Fatalf("hang child reserved %d words, want 4", holeWords)
	}
	if err := hang.Kill(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "dead client reaped", func() bool { return ag.Reaped() >= 1 })

	// A healthy client then logs straight past the corpse's hole: the ring
	// must keep flowing, with only the commit-count mismatch as evidence.
	logger := child(t, faultinject.ChildSpec{
		Mode: faultinject.ModeLog, Segment: seg, CPU: 0, Events: 400, Pid: 7,
	})
	if _, err := logger.Expect("done events=400"); err != nil {
		t.Fatal(err)
	}
	if err := logger.Wait(); err != nil {
		t.Fatal(err)
	}

	ag.Stop()
	st, err := wait()
	if err != nil {
		t.Fatal(err)
	}
	if err := ag.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Anomalies != 1 {
		t.Errorf("captured %d anomalous blocks, want exactly 1", st.Anomalies)
	}

	evs, ds := decodeAll(t, buf.Bytes())
	if ds.SkippedWords != holeWords {
		t.Errorf("decoder skipped %d words, want the hole's %d", ds.SkippedWords, holeWords)
	}
	got := 0
	for i := range evs {
		if evs[i].Major() == event.MajorTest {
			got++
		}
	}
	if got != 400 {
		t.Errorf("recovered %d test events, logged 400", got)
	}

	// The salvager agrees, to the word: nothing whole-block quarantined,
	// no sequence gaps, exactly the hole skipped within the bad block.
	_, rep, err := stream.Salvage(bytes.NewReader(buf.Bytes()), int64(buf.Len()), 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BlocksSkipped != 0 || rep.LostBlocks != 0 || rep.DupBlocks != 0 {
		t.Errorf("salvage quarantined/lost blocks on a kill-only trace: %+v", rep)
	}
	if rep.Stats.SkippedWords != holeWords {
		t.Errorf("salvage skipped %d words, want %d", rep.Stats.SkippedWords, holeWords)
	}
}

// TestCrossProcessMonotonicityAndConservation: two real processes hammer
// every CPU slot of one segment concurrently. Per-CPU timestamps must
// never decrease — the property the in-CAS-loop timestamp re-read buys,
// now across address spaces — and every reserved word must be accounted
// for: events + fillers + skipped == block words exactly.
func TestCrossProcessMonotonicityAndConservation(t *testing.T) {
	ag, buf, wait := startAgent(t, shm.Geometry{CPUs: 2, BufWords: 512, NumBufs: 4, MaxClients: 4})
	const perChild = 4000

	a := child(t, faultinject.ChildSpec{
		Mode: faultinject.ModeLog, Segment: ag.Path(), CPU: -1, Events: perChild, Pid: 1,
	})
	b := child(t, faultinject.ChildSpec{
		Mode: faultinject.ModeLog, Segment: ag.Path(), CPU: -1, Events: perChild, Pid: 2,
	})
	for _, c := range []*faultinject.Child{a, b} {
		if _, err := c.Expect("done"); err != nil {
			t.Fatal(err)
		}
		if err := c.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	ag.Stop()
	if _, err := wait(); err != nil {
		t.Fatal(err)
	}
	if err := ag.Close(); err != nil {
		t.Fatal(err)
	}

	evs, ds := decodeAll(t, buf.Bytes())
	if ds.Garbled() {
		t.Errorf("clean run decoded garbled: %+v", ds)
	}
	test, eventWords := 0, 0
	last := map[int]uint64{}
	for i := range evs {
		ev := &evs[i]
		if ev.Time < last[ev.CPU] {
			t.Fatalf("cpu %d timestamp regressed: %d after %d", ev.CPU, ev.Time, last[ev.CPU])
		}
		last[ev.CPU] = ev.Time
		if ev.Major() == event.MajorTest {
			test++
		}
		eventWords += ev.Words()
	}
	if test != 2*perChild {
		t.Errorf("recovered %d test events, logged %d", test, 2*perChild)
	}

	blockWords := totalBlockWords(t, buf.Bytes())
	if got := eventWords + ds.FillerWords + ds.SkippedWords; got != blockWords {
		t.Errorf("word conservation: events %d + fillers %d + skipped %d = %d, blocks hold %d",
			eventWords, ds.FillerWords, ds.SkippedWords, got, blockWords)
	}
}

// totalBlockWords sums the data words of every block in a trace file.
func totalBlockWords(t *testing.T, data []byte) int {
	t.Helper()
	bs, err := stream.NewBlockStream(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for {
		bh, _, err := bs.Next()
		if err == io.EOF {
			return total
		}
		if err != nil {
			t.Fatal(err)
		}
		total += bh.NWords
	}
}

// perCPUCounter mirrors the segment's deterministic clock for the
// in-process replica: an independent tick counter per CPU slot.
type perCPUCounter struct{ ticks []uint64 }

func (c *perCPUCounter) Now(cpu int) uint64 { return atomic.AddUint64(&c.ticks[cpu], 1) }
func (c *perCPUCounter) Hz() uint64         { return 1e9 }

// TestCrossProcessAnalysisParity is the acceptance bar for the shared
// memory path: the same synthetic workload run (a) by two real OS
// processes through Attach + the ktraced-style drain and (b) in-process
// through the core Tracer must produce traces whose per-CPU event
// streams — and therefore whose analysis Overview — are identical.
func TestCrossProcessAnalysisParity(t *testing.T) {
	const (
		cpus, bufWords, numBufs = 2, 256, 4
		rounds                  = 300
	)
	pids := []uint64{101, 202}

	// (a) cross-process: one child per CPU slot, deterministic segment
	// clock, drained by the agent.
	ag, shmBuf, wait := startAgent(t, shm.Geometry{
		CPUs: cpus, BufWords: bufWords, NumBufs: numBufs,
		MaxClients: 4, DeterministicClock: true,
	})
	var kids []*faultinject.Child
	for cpu := 0; cpu < cpus; cpu++ {
		kids = append(kids, child(t, faultinject.ChildSpec{
			Mode: faultinject.ModeWorkload, Segment: ag.Path(),
			CPU: cpu, Events: rounds, Pid: pids[cpu],
		}))
	}
	for _, c := range kids {
		if _, err := c.Expect("done"); err != nil {
			t.Fatal(err)
		}
		if err := c.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	ag.Stop()
	if _, err := wait(); err != nil {
		t.Fatal(err)
	}
	if err := ag.Close(); err != nil {
		t.Fatal(err)
	}

	// (b) in-process replica: same geometry, same per-CPU deterministic
	// clock, same workload calls.
	tr := core.MustNew(core.Config{
		CPUs: cpus, BufWords: bufWords, NumBufs: numBufs,
		Mode: core.Stream, ZeroFill: true,
		Clock: &perCPUCounter{ticks: make([]uint64, cpus)},
	})
	tr.EnableAll()
	var inBuf bytes.Buffer
	inWait := stream.CaptureAsync(tr, &inBuf)
	for cpu := 0; cpu < cpus; cpu++ {
		faultinject.SyntheticWorkload(tr.CPU(cpu), pids[cpu], rounds)
	}
	tr.Stop()
	if _, err := inWait(); err != nil {
		t.Fatal(err)
	}

	shmEvs, shmDs := decodeAll(t, shmBuf.Bytes())
	inEvs, inDs := decodeAll(t, inBuf.Bytes())
	if shmDs.Garbled() || inDs.Garbled() {
		t.Fatalf("parity runs garbled: shm %+v in-process %+v", shmDs, inDs)
	}

	// Per-CPU streams must match event for event, word for word.
	for cpu := 0; cpu < cpus; cpu++ {
		a, b := cpuStream(shmEvs, cpu), cpuStream(inEvs, cpu)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("cpu %d: cross-process stream (%d events) differs from in-process (%d events)",
				cpu, len(a), len(b))
		}
	}

	// And so must the analysis built on them.
	shmOv := overviewString(t, shmEvs)
	inOv := overviewString(t, inEvs)
	if shmOv != inOv {
		t.Errorf("Overview parity broken:\ncross-process:\n%s\nin-process:\n%s", shmOv, inOv)
	}
	if len(shmOv) == 0 || !bytes.Contains([]byte(shmOv), []byte("101")) {
		t.Errorf("overview vacuous:\n%s", shmOv)
	}
}

func cpuStream(evs []event.Event, cpu int) []event.Event {
	var out []event.Event
	for i := range evs {
		if evs[i].CPU == cpu {
			out = append(out, evs[i])
		}
	}
	return out
}

func overviewString(t *testing.T, evs []event.Event) string {
	t.Helper()
	return analysis.OverviewString(analysis.Build(evs, 1e9, event.Default).Overview())
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCrossProcessBatchKill is the batched fast path's worst case made
// real: a child opens a multi-event batch, appends some events, and dies
// with the batch still open. The single batch reservation means the
// commit shortfall covers the whole extent — written events included —
// so the daemon must flag the block anomalous and the decoder must
// recover the written events while skipping exactly the unwritten tail.
func TestCrossProcessBatchKill(t *testing.T) {
	const (
		batchWords  = 20
		childEvents = 3 // 6 words written, 14-word zero tail
	)
	ag, buf, wait := startAgent(t, shm.Geometry{CPUs: 1, BufWords: 256, NumBufs: 4, MaxClients: 4})

	hang := child(t, faultinject.ChildSpec{
		Mode: faultinject.ModeBatchHang, Segment: ag.Path(),
		CPU: 0, Events: childEvents, Payload: batchWords,
	})
	line, err := hang.Expect("hung")
	if err != nil {
		t.Fatal(err)
	}
	extent, err := faultinject.Field(line, "words")
	if err != nil {
		t.Fatal(err)
	}
	written, err := faultinject.Field(line, "written")
	if err != nil {
		t.Fatal(err)
	}
	if extent != batchWords || written != 2*childEvents {
		t.Fatalf("child batch extent=%d written=%d, want %d/%d",
			extent, written, batchWords, 2*childEvents)
	}
	if err := hang.Kill(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "dead client reaped", func() bool { return ag.Reaped() >= 1 })

	// A healthy client logs past the corpse, filling and sealing the
	// buffer that holds the abandoned batch.
	logger := child(t, faultinject.ChildSpec{
		Mode: faultinject.ModeLog, Segment: ag.Path(), CPU: 0, Events: 400, Pid: 7,
	})
	if _, err := logger.Expect("done events=400"); err != nil {
		t.Fatal(err)
	}
	if err := logger.Wait(); err != nil {
		t.Fatal(err)
	}

	ag.Stop()
	st, err := wait()
	if err != nil {
		t.Fatal(err)
	}
	if err := ag.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Anomalies != 1 {
		t.Errorf("captured %d anomalous blocks, want exactly 1", st.Anomalies)
	}

	evs, ds := decodeAll(t, buf.Bytes())
	// Exact loss accounting: only the batch's unwritten tail is skipped.
	if ds.SkippedWords != extent-written {
		t.Errorf("decoder skipped %d words, want the batch tail's %d",
			ds.SkippedWords, extent-written)
	}
	// The child's written events survive alongside the healthy client's.
	got := 0
	for i := range evs {
		if evs[i].Major() == event.MajorTest {
			got++
		}
	}
	if want := 400 + childEvents; got != want {
		t.Errorf("recovered %d test events, want %d (400 logged + %d from the dead batch)",
			got, want, childEvents)
	}
}
