// Process-level fault injection: real child processes attached to a
// shared trace segment, killed with SIGKILL at the worst moment — after
// reserving buffer space, before logging it. The in-process
// WriterInjector simulates that state; these children make it real, with
// a separate address space dying and the daemon's pid-liveness reap and
// commit-count accounting left to clean up.
//
// The mechanism is test-binary re-exec: a TestMain that calls
// RunChildIfRequested first behaves normally for the parent run, but when
// the child environment variable is set the process becomes the fault
// child — it attaches to the segment named in the environment, runs its
// mode, and exits without ever reaching the test framework.
package faultinject

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"

	"k42trace/internal/core"
	"k42trace/internal/event"
	"k42trace/internal/ksim"
	"k42trace/internal/shm"
)

// ChildEnv selects the child mode; unset means "not a fault child".
const ChildEnv = "K42TRACE_SHM_CHILD"

// Child environment: the spec travels to the re-exec'd process as
// variables, not flags, so the test binary's own flag parsing never sees
// it.
const (
	envSeg     = "K42TRACE_SHM_CHILD_SEG"
	envCPU     = "K42TRACE_SHM_CHILD_CPU"
	envEvents  = "K42TRACE_SHM_CHILD_EVENTS"
	envPid     = "K42TRACE_SHM_CHILD_PID"
	envPayload = "K42TRACE_SHM_CHILD_PAYLOAD"
)

// Child modes.
const (
	// ModeLog attaches and logs Events two-word test events, round-robin
	// across all CPU slots when CPU is -1, then detaches and exits.
	ModeLog = "log"
	// ModeWorkload attaches and runs SyntheticWorkload on one CPU slot,
	// then detaches and exits.
	ModeWorkload = "workload"
	// ModeHang attaches, reserves event space with ReserveHang — leaving
	// the reservation uncommitted and the in-flight count raised — then
	// blocks forever, waiting for the parent's SIGKILL.
	ModeHang = "hang"
	// ModeBatchHang attaches, opens a Payload-word batch, appends Events
	// two-word test events into it, and blocks with the batch open —
	// nothing committed, in-flight raised — waiting for SIGKILL. The
	// worst case of the batched fast path: the whole extent (written
	// events included) must surface as a commit-count shortfall.
	ModeBatchHang = "batchhang"
)

// ChildSpec describes one fault child.
type ChildSpec struct {
	Mode    string
	Segment string
	// CPU is the slot to log on; -1 (ModeLog only) round-robins over all.
	CPU int
	// Events is the event count for ModeLog, the round count for
	// ModeWorkload.
	Events int
	// Pid is the logical workload pid stamped into events (not the OS
	// pid).
	Pid uint64
	// Payload is ModeHang's reservation payload size in words.
	Payload int
}

// Child is a running fault child and its line-oriented stdout, the
// parent's synchronization channel: children print a line at each
// milestone ("attached ...", "hung ...", "done ...") and the parent
// blocks on Expect until the child is provably in the state the test
// needs.
type Child struct {
	Cmd *exec.Cmd
	out *bufio.Scanner
}

// StartChild re-executes the current binary as a fault child. It must be
// paired with a TestMain calling RunChildIfRequested, or the child will
// run the parent's tests instead.
func StartChild(spec ChildSpec) (*Child, error) {
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		ChildEnv+"="+spec.Mode,
		envSeg+"="+spec.Segment,
		envCPU+"="+strconv.Itoa(spec.CPU),
		envEvents+"="+strconv.Itoa(spec.Events),
		envPid+"="+strconv.FormatUint(spec.Pid, 10),
		envPayload+"="+strconv.Itoa(spec.Payload),
	)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("faultinject: starting child: %w", err)
	}
	return &Child{Cmd: cmd, out: bufio.NewScanner(stdout)}, nil
}

// Expect reads the child's next milestone line and verifies its prefix,
// returning the whole line (for parsing counts out of it).
func (c *Child) Expect(prefix string) (string, error) {
	if !c.out.Scan() {
		err := c.out.Err()
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return "", fmt.Errorf("faultinject: child died before %q: %w", prefix, err)
	}
	line := c.out.Text()
	if !strings.HasPrefix(line, prefix) {
		return "", fmt.Errorf("faultinject: child said %q, want prefix %q", line, prefix)
	}
	return line, nil
}

// Field parses "key=value" integers out of a milestone line.
func Field(line, key string) (int, error) {
	for _, tok := range strings.Fields(line) {
		if v, ok := strings.CutPrefix(tok, key+"="); ok {
			return strconv.Atoi(v)
		}
	}
	return 0, fmt.Errorf("faultinject: no %q field in %q", key, line)
}

// Kill delivers SIGKILL — no handlers, no deferred Detach, the process is
// simply gone, exactly like the paper's worry about "a process's
// execution [being] interrupted after it has reserved space".
func (c *Child) Kill() error {
	if err := c.Cmd.Process.Kill(); err != nil {
		return err
	}
	c.Cmd.Wait() // reap the zombie; the kill is the expected exit
	return nil
}

// Wait waits for a child that is expected to exit on its own.
func (c *Child) Wait() error { return c.Cmd.Wait() }

// RunChildIfRequested turns the process into a fault child when the child
// environment is set; otherwise it returns immediately. Call it first in
// TestMain.
func RunChildIfRequested() {
	mode := os.Getenv(ChildEnv)
	if mode == "" {
		return
	}
	os.Exit(runChild(mode))
}

func runChild(mode string) int {
	atoi := func(k string) int { n, _ := strconv.Atoi(os.Getenv(k)); return n }
	cpu, n, payload := atoi(envCPU), atoi(envEvents), atoi(envPayload)
	pid, _ := strconv.ParseUint(os.Getenv(envPid), 10, 64)
	cl, err := shm.Attach(os.Getenv(envSeg))
	if err != nil {
		fmt.Fprintln(os.Stderr, "fault child:", err)
		return 1
	}
	fmt.Printf("attached slot=%d pid=%d\n", cl.Slot(), os.Getpid())
	switch mode {
	case ModeLog:
		logged := 0
		for i := 0; i < n; i++ {
			slot := cpu
			if slot < 0 {
				slot = i % cl.NumCPUs()
			}
			if cl.CPU(slot).Log2(event.MajorTest, 1, uint64(i), pid) {
				logged++
			}
		}
		if err := cl.Detach(); err != nil {
			fmt.Fprintln(os.Stderr, "fault child:", err)
			return 1
		}
		fmt.Printf("done events=%d\n", logged)
	case ModeWorkload:
		logged := SyntheticWorkload(cl.CPU(cpu), pid, n)
		if err := cl.Detach(); err != nil {
			fmt.Fprintln(os.Stderr, "fault child:", err)
			return 1
		}
		fmt.Printf("done events=%d\n", logged)
	case ModeHang:
		words, ok := cl.CPU(cpu).ReserveHang(event.MajorTest, 9, payload)
		if !ok {
			fmt.Fprintln(os.Stderr, "fault child: reserve failed")
			return 1
		}
		fmt.Printf("hung words=%d\n", words)
		select {} // hold the dead reservation until SIGKILL
	case ModeBatchHang:
		var b core.Batch
		if !cl.CPU(cpu).OpenBatch(&b, event.MajorTest, payload) {
			fmt.Fprintln(os.Stderr, "fault child: batch open failed")
			return 1
		}
		written := 0
		for i := 0; i < n; i++ {
			if b.Log1(event.MajorTest, 9, uint64(i)) {
				written++
			}
		}
		fmt.Printf("hung words=%d written=%d\n", payload, 2*written)
		select {} // hold the open batch until SIGKILL
	default:
		fmt.Fprintf(os.Stderr, "fault child: unknown mode %q\n", mode)
		return 2
	}
	return 0
}

// EventSink is the logging surface SyntheticWorkload drives — satisfied
// by both the in-process core.CPU and the cross-process shm.CPU, which is
// the point: the same workload runs against both and must analyze
// identically.
type EventSink interface {
	Log2(major event.Major, minor uint16, d0, d1 uint64) bool
	Log3(major event.Major, minor uint16, d0, d1, d2 uint64) bool
	Log4(major event.Major, minor uint16, d0, d1, d2, d3 uint64) bool
}

// SyntheticWorkload logs rounds of a fixed sched/syscall/lock pattern
// attributed to logical process pid, returning the events logged. The
// sequence is deterministic: with a deterministic clock, two runs of the
// same rounds on the same CPU slot produce identical buffer words.
func SyntheticWorkload(s EventSink, pid uint64, rounds int) int {
	logged := 0
	count := func(ok bool) {
		if ok {
			logged++
		}
	}
	for i := 0; i < rounds; i++ {
		count(s.Log3(event.MajorSched, ksim.EvSchedSwitch, 0, pid, pid<<8))
		nr := uint64(i % 7)
		count(s.Log2(event.MajorSyscall, ksim.EvSyscallEnter, pid, nr))
		count(s.Log2(event.MajorSyscall, ksim.EvSyscallExit, pid, nr))
		if i%5 == 4 {
			lock := 0xe100 + pid
			count(s.Log2(event.MajorLock, ksim.EvLockStartWait, lock, pid))
			count(s.Log4(event.MajorLock, ksim.EvLockAcquired, lock, 120, 3, pid))
		}
	}
	return logged
}
