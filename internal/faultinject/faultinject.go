// Package faultinject deterministically corrupts traces at every layer of
// the pipeline, so the robustness the paper designs for — writers killed
// between reserving and logging (§3.1's commit counts), torn or truncated
// trace files, and lossy relay transports — can be exercised on demand
// instead of waited for.
//
// Three injectors cover the three layers:
//
//   - WriterInjector simulates a logging thread preempted or killed after
//     reserving buffer space but before writing its event, using the
//     tracer's own ReserveOnly hook; the commit-count machinery must then
//     flag the buffer anomalous and the decoder must resynchronize.
//   - Image corrupts a complete trace file in memory: bit-flipped file and
//     block headers, flipped payload bits, zero-filled regions, torn block
//     writes, and truncated tails.
//   - Injector wraps an io.Writer carrying the trace wire format and
//     corrupts blocks in flight: drops, duplicates, reorders, tears, and
//     bit flips — the failure modes of a lossy relay transport.
//
// Every injector is seeded and replayable: the same seed over the same
// input produces byte-identical corruption, so fault-injection tests are
// ordinary deterministic tests.
package faultinject

import (
	"fmt"
	"math/rand"

	"k42trace/internal/core"
	"k42trace/internal/event"
)

// WriterFaults configures writer-side kill injection.
type WriterFaults struct {
	Seed int64
	// KillProb is the probability that one MaybeKill call simulates a
	// writer killed between reserve and commit.
	KillProb float64
	// MaxPayloadWords bounds the payload size of an injected dead
	// reservation (0 means header-only reservations).
	MaxPayloadWords int
}

// WriterInjector simulates the paper's motivating writer failure: a
// thread that reserves buffer space and then never logs into it. Sprinkle
// MaybeKill between real Log calls; each injected kill leaves a reserved
// hole whose buffer the tracer must flag anomalous at write-out and whose
// words the decoder must skip.
type WriterInjector struct {
	rng   *rand.Rand
	f     WriterFaults
	kills int
}

// NewWriterInjector returns a seeded writer-side injector.
func NewWriterInjector(f WriterFaults) *WriterInjector {
	return &WriterInjector{rng: rand.New(rand.NewSource(f.Seed)), f: f}
}

// MaybeKill rolls the dice and, on a hit, reserves event space on c
// without ever committing it. It reports whether a kill was injected.
func (wi *WriterInjector) MaybeKill(c core.CPU) bool {
	if wi.rng.Float64() >= wi.f.KillProb {
		return false
	}
	payload := 0
	if wi.f.MaxPayloadWords > 0 {
		payload = wi.rng.Intn(wi.f.MaxPayloadWords + 1)
	}
	if !c.ReserveOnly(event.MajorTest, 0xdead, payload) {
		return false
	}
	wi.kills++
	return true
}

// Kills returns the number of kills injected so far.
func (wi *WriterInjector) Kills() int { return wi.kills }

// flipBit flips one bit inside b[lo:hi], chosen by rng.
func flipBit(rng *rand.Rand, b []byte, lo, hi int) int {
	bit := lo*8 + rng.Intn((hi-lo)*8)
	b[bit/8] ^= 1 << (bit % 8)
	return bit
}

// note formats one fault-log line.
func note(log *[]string, format string, args ...any) {
	*log = append(*log, fmt.Sprintf(format, args...))
}
