package ktrace_test

import (
	"fmt"
	"os"

	ktrace "k42trace"
)

// The basic lifecycle: create a tracer, enable it, log from a per-CPU
// handle, and read the flight recorder back.
func Example() {
	tr := ktrace.MustNew(ktrace.Config{
		CPUs:     2,
		BufWords: 256,
		NumBufs:  4,
		Clock:    ktrace.NewManualClock(1), // deterministic for the example
	})
	tr.EnableAll()

	cpu := tr.CPU(0)
	cpu.Log2(ktrace.MajorUser, 100, 7, 42)

	events, info := tr.Dump(0)
	fmt.Println("events:", len(events), "garbled:", info.Stats.Garbled())
	last := events[len(events)-1]
	fmt.Println("payload:", last.Data[0], last.Data[1])
	// Output:
	// events: 2 garbled: false
	// payload: 7 42
}

// Self-describing events: register a format once; every generic tool can
// render the event afterwards.
func Example_selfDescribing() {
	reg := ktrace.NewRegistry()
	reg.MustRegister(ktrace.MajorUser, 101, "APP_REQUEST", "64 str",
		"request %0[%lld] for %1[%s]")

	tr := ktrace.MustNew(ktrace.Config{CPUs: 1, BufWords: 256, NumBufs: 4,
		Clock: ktrace.NewManualClock(1)})
	tr.EnableAll()

	toks, _ := ktrace.ParseTokens("64 str")
	words, _ := ktrace.Pack(toks, []ktrace.Value{
		{Int: 9}, {Str: "/etc/motd", IsStr: true}})
	tr.CPU(0).LogWords(ktrace.MajorUser, 101, words)

	events, _ := tr.Dump(0)
	name, text := ktrace.Describe(reg, &events[len(events)-1])
	fmt.Println(name+":", text)
	// Output:
	// APP_REQUEST: request 9 for /etc/motd
}

// The trace mask: tracing stays compiled in, costs ~2ns when disabled, and
// is enabled per major class at runtime.
func Example_mask() {
	tr := ktrace.MustNew(ktrace.Config{CPUs: 1, BufWords: 256, NumBufs: 4})
	cpu := tr.CPU(0)

	fmt.Println("disabled logged:", cpu.Log1(ktrace.MajorIO, 1, 1))
	tr.Enable(ktrace.MajorIO)
	fmt.Println("enabled logged:", cpu.Log1(ktrace.MajorIO, 1, 1))
	fmt.Println("other major still off:", cpu.Log1(ktrace.MajorMem, 1, 1))
	// Output:
	// disabled logged: false
	// enabled logged: true
	// other major still off: false
}

// Streaming to a file and analyzing it: the Figure 5 listing.
func Example_streamToFile() {
	ktrace.DefaultRegistry().MustRegister(ktrace.MajorTest, 7,
		"APP_TICK", "64", "tick %0[%lld]")
	tr := ktrace.MustNew(ktrace.Config{CPUs: 1, BufWords: 64, NumBufs: 4,
		Mode: ktrace.Stream, Clock: ktrace.NewManualClock(1000)})
	tr.EnableAll()
	path := "example_stream.ktr"
	wait, _ := ktrace.WriteTraceFile(tr, path)
	defer os.Remove(path)

	for i := 0; i < 3; i++ {
		tr.CPU(0).Log1(ktrace.MajorTest, 7, uint64(i))
	}
	tr.Stop()
	wait()

	trace, _, _, _ := ktrace.OpenTraceFile(path)
	trace.List(os.Stdout, ktrace.ListOptions{
		Majors: []ktrace.Major{ktrace.MajorTest}})
	// Output:
	// 0.0000010 APP_TICK                     tick 0
	// 0.0000020 APP_TICK                     tick 1
	// 0.0000030 APP_TICK                     tick 2
}
