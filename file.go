package ktrace

import (
	"fmt"
	"os"

	"k42trace/internal/analysis"
	"k42trace/internal/event"
	"k42trace/internal/stream"
)

// OpenTraceFile reads a whole trace file, merges its events by time, and
// returns the analysis Trace plus the file metadata and decode statistics.
// It is the standard entry point for the command-line tools; large-file
// tools that want random access should use NewReader directly. Blocks are
// decoded on all cores; use OpenTraceFileParallel to pick a worker count.
func OpenTraceFile(path string) (*Trace, TraceMeta, DecodeStats, error) {
	return OpenTraceFileParallel(path, 0)
}

// OpenTraceFileParallel is OpenTraceFile with an explicit decode worker
// count (<= 0 means GOMAXPROCS). The result is bit-identical for every
// worker count.
func OpenTraceFileParallel(path string, workers int) (*Trace, TraceMeta, DecodeStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, TraceMeta{}, DecodeStats{}, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, TraceMeta{}, DecodeStats{}, err
	}
	rd, err := stream.NewReader(f, fi.Size())
	if err != nil {
		return nil, TraceMeta{}, DecodeStats{}, fmt.Errorf("%s: %w", path, err)
	}
	evs, st, err := rd.ReadAllParallel(workers)
	if err != nil {
		return nil, rd.Meta(), st, fmt.Errorf("%s: %w", path, err)
	}
	return analysis.Build(evs, rd.Meta().ClockHz, event.Default), rd.Meta(), st, nil
}

// SalvageTraceFile opens a possibly damaged trace forgivingly (<= 0
// workers means GOMAXPROCS): undecodable blocks are quarantined and
// reported in the SalvageReport rather than failing the read, so analyses
// run on whatever survived.
func SalvageTraceFile(path string, workers int) (*Trace, *SalvageReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	evs, rep, err := stream.Salvage(f, fi.Size(), workers)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return analysis.Build(evs, rep.Meta.ClockHz, event.Default), rep, nil
}

// SalvageTraceFileTo rewrites the readable blocks of the damaged trace at
// src into a clean trace file at dst and returns the salvage accounting.
func SalvageTraceFileTo(src, dst string, workers int) (*SalvageReport, error) {
	f, err := os.Open(src)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	out, err := os.Create(dst)
	if err != nil {
		return nil, err
	}
	rep, err := stream.SalvageTo(f, fi.Size(), out, workers)
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", src, err)
	}
	return rep, nil
}

// WriteTraceFile captures a stream-mode tracer into a file at path. It
// returns a wait function to call after Tracer.Stop.
func WriteTraceFile(tr *Tracer, path string) (wait func() (CaptureStats, error), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	inner := stream.CaptureAsync(tr, f)
	return func() (CaptureStats, error) {
		st, err := inner()
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		return st, err
	}, nil
}
