// Package ktrace is a Go implementation of the unified tracing
// infrastructure described in "Efficient, Unified, and Scalable
// Performance Monitoring for Multiprocessor Operating Systems" (Wisniewski
// and Rosenberg, SC 2003) — the K42 tracing facility whose techniques were
// later adopted by the Linux Trace Toolkit and relayfs.
//
// The library provides:
//
//   - Lockless logging of variable-length events into per-processor
//     buffers: space is reserved with a compare-and-swap on a per-CPU
//     index, and the timestamp is re-read on every retry so per-CPU
//     streams carry monotonically non-decreasing timestamps.
//   - A single 64-bit trace mask over 64 major event classes, cheap
//     enough that trace statements stay compiled in always and are
//     enabled dynamically.
//   - Random access to large traces: events never cross buffer
//     (alignment-boundary) edges; filler events pad buffer tails, so
//     tools can seek to any boundary of a multi-gigabyte trace and start
//     decoding.
//   - Per-buffer commit counts that detect garbled buffers (a writer
//     killed between reserving and logging).
//   - Self-describing events: each (major, minor) pair registers a token
//     format and a printf-like display string, so generic tools can list
//     and render any event.
//   - Flight-recorder (circular) and streaming modes, with file, and
//     network (relayfs-style) transports, plus the paper's analysis
//     tools: event listing, lock-contention analysis, statistical
//     execution profiles, fine-grained time breakdowns, and per-CPU
//     timeline rendering.
//
// # Quick start
//
//	tr := ktrace.MustNew(ktrace.Config{CPUs: 4})
//	tr.EnableAll()
//	cpu := tr.CPU(0)                       // per-processor logging handle
//	cpu.Log1(ktrace.MajorUser, 7, 42)      // one-payload-word event
//	events, _ := tr.Dump(0)                // flight-recorder readout
//
// For streaming to disk, create the tracer with Mode: ktrace.Stream and
// drain it with ktrace.Capture; open the result with ktrace.OpenTraceFile
// or ktrace.NewReader and feed the decoded events to ktrace.BuildTrace for
// analysis.
//
// The repository also contains, under internal/, the substrates used to
// reproduce the paper's evaluation: a deterministic multiprocessor OS
// simulator (internal/ksim), an SDET-style throughput workload
// (internal/sdet), and the comparison loggers (internal/baseline).
package ktrace

import (
	"io"

	"k42trace/internal/analysis"
	"k42trace/internal/clock"
	"k42trace/internal/core"
	"k42trace/internal/event"
	"k42trace/internal/relay"
	"k42trace/internal/shm"
	"k42trace/internal/stream"
)

// --- Core tracer -------------------------------------------------------------

// Tracer is the unified tracing facility; see core.Tracer.
type Tracer = core.Tracer

// Config configures a Tracer.
type Config = core.Config

// CPU is a per-processor logging handle.
type CPU = core.CPU

// Mode selects buffer management.
type Mode = core.Mode

// Buffer-management modes.
const (
	FlightRecorder = core.FlightRecorder
	Stream         = core.Stream
)

// OnFull is the stream-mode full-buffer policy.
type OnFull = core.OnFull

// Full-buffer policies.
const (
	Block = core.Block
	Drop  = core.Drop
)

// Sealed is a completed buffer delivered to stream consumers.
type Sealed = core.Sealed

// Batch is a per-logger sub-allocator: one reservation CAS claims many
// events' worth of trace memory, and events are then appended with plain
// stores — see core.Batch. Open one with CPU.OpenBatch (in-process) or
// ShmCPU.OpenBatch (shared segment); Config.BatchWords enables the
// transparent per-P batched fast path behind Tracer.PLog0..PLog4.
type Batch = core.Batch

// Stats is a snapshot of tracing counters.
type Stats = core.Stats

// DecodeStats reports what a buffer decode encountered.
type DecodeStats = core.DecodeStats

// DumpInfo describes a flight-recorder dump.
type DumpInfo = core.DumpInfo

// New creates a Tracer; the zero mask means tracing starts disabled.
func New(cfg Config) (*Tracer, error) { return core.New(cfg) }

// MustNew is New that panics on configuration errors.
func MustNew(cfg Config) *Tracer { return core.MustNew(cfg) }

// DecodeBuffer decodes one buffer's raw words.
func DecodeBuffer(cpu int, words []uint64) ([]Event, DecodeStats) {
	return core.DecodeBuffer(cpu, words)
}

// CrashDump is a decoded post-mortem image of a tracer's memory.
type CrashDump = core.CrashDump

// ReadCrashDump parses a crash-dump image written by Tracer.WriteCrashDump.
func ReadCrashDump(r io.Reader) (*CrashDump, error) { return core.ReadCrashDump(r) }

// Redact copies a buffer with events outside the visibility mask replaced
// by same-length fillers (per-user trace views; see core.Redact).
func Redact(words []uint64, visible uint64) []uint64 { return core.Redact(words, visible) }

// VisibleMask builds a visibility mask from major classes.
func VisibleMask(majors ...Major) uint64 { return core.VisibleMask(majors...) }

// --- Events ------------------------------------------------------------------

// Event is a decoded trace event.
type Event = event.Event

// Header is the packed first word of an event.
type Header = event.Header

// Major is a 6-bit event class; one bit of the trace mask each.
type Major = event.Major

// Predeclared major classes.
const (
	MajorControl   = event.MajorControl
	MajorMem       = event.MajorMem
	MajorProc      = event.MajorProc
	MajorSched     = event.MajorSched
	MajorLock      = event.MajorLock
	MajorIO        = event.MajorIO
	MajorIPC       = event.MajorIPC
	MajorException = event.MajorException
	MajorUser      = event.MajorUser
	MajorSyscall   = event.MajorSyscall
	MajorSample    = event.MajorSample
	MajorAlloc     = event.MajorAlloc
	MajorNet       = event.MajorNet
	MajorTest      = event.MajorTest
	NumMajors      = event.NumMajors
)

// CtrlMaskChange is the MajorControl minor that marks the instant a new
// trace mask took effect on a CPU (payload: new mask, previous mask).
// Within one CPU's stream it is an exact visibility-epoch boundary.
const CtrlMaskChange = event.CtrlMaskChange

// ParseMask parses a trace-mask spec: "all", "none", a hex or decimal
// literal, or comma-separated major names ("ctrl,sched,lock"). Name
// lists always include the CTRL bit so control markers keep flowing.
func ParseMask(spec string) (uint64, error) { return event.ParseMask(spec) }

// MaskString renders a trace mask as a hex literal.
func MaskString(mask uint64) string { return event.MaskString(mask) }

// MaskMajors lists the enabled majors' names, sorted by bit position.
func MaskMajors(mask uint64) []string { return event.MaskMajors(mask) }

// Registry maps (major, minor) to self-describing event records.
type Registry = event.Registry

// Desc is one self-describing event record.
type Desc = event.Desc

// Value is a decoded payload field.
type Value = event.Value

// Token describes one payload field's width.
type Token = event.Token

// DefaultRegistry returns the process-wide event registry.
func DefaultRegistry() *Registry { return event.Default }

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return event.NewRegistry() }

// Describe renders an event's name and display text via a registry.
func Describe(r *Registry, e *Event) (name, text string) { return event.Describe(r, e) }

// MakeHeader packs an event header word.
func MakeHeader(timestamp uint32, length int, major Major, minor uint16) Header {
	return event.MakeHeader(timestamp, length, major, minor)
}

// Pack encodes values per a token list into payload words.
func Pack(toks []Token, vals []Value) ([]uint64, error) { return event.Pack(toks, vals) }

// Unpack decodes payload words per a token list.
func Unpack(toks []Token, words []uint64) ([]Value, error) { return event.Unpack(toks, words) }

// ParseTokens parses a K42-style token string such as "64 64 str".
func ParseTokens(s string) ([]Token, error) { return event.ParseTokens(s) }

// --- Clocks ------------------------------------------------------------------

// ClockSource produces trace timestamps.
type ClockSource = clock.Source

// SyncClock is a shared synchronized nanosecond clock (PowerPC-style).
type SyncClock = clock.Sync

// ManualClock is a deterministic test clock.
type ManualClock = clock.Manual

// TSCClock models per-CPU skewed counters (x86-style).
type TSCClock = clock.TSC

// NewSyncClock returns a synchronized nanosecond clock.
func NewSyncClock() *SyncClock { return clock.NewSync() }

// NewManualClock returns a deterministic clock advancing step per read.
func NewManualClock(step uint64) *ManualClock { return clock.NewManual(step) }

// --- Trace files and network relay --------------------------------------------

// TraceWriter serializes sealed buffers into the trace file format.
type TraceWriter = stream.Writer

// TraceReader provides random access to a trace file.
type TraceReader = stream.Reader

// TraceMeta describes a trace file.
type TraceMeta = stream.Meta

// BlockStream reads the trace format sequentially (pipes, sockets).
type BlockStream = stream.BlockStream

// CaptureStats summarizes a capture run.
type CaptureStats = stream.CaptureStats

// NewWriter writes a trace-file header and returns a writer.
func NewWriter(w io.Writer, meta TraceMeta) (*TraceWriter, error) { return stream.NewWriter(w, meta) }

// NewReader opens a trace file of the given size for random access.
func NewReader(r io.ReaderAt, size int64) (*TraceReader, error) { return stream.NewReader(r, size) }

// Capture drains a stream-mode tracer into w until the tracer stops.
func Capture(tr *Tracer, w io.Writer) (CaptureStats, error) { return stream.Capture(tr, w) }

// CaptureAsync runs Capture in a goroutine; call the returned function
// after Tracer.Stop to collect the result.
func CaptureAsync(tr *Tracer, w io.Writer) func() (CaptureStats, error) {
	return stream.CaptureAsync(tr, w)
}

// SalvageReport describes what a forgiving read recovered from a damaged
// trace: blocks scanned and quarantined, duplicate and lost deliveries,
// and exact per-CPU loss accounting.
type SalvageReport = stream.SalvageReport

// BadBlock is one quarantined block in a SalvageReport.
type BadBlock = stream.BadBlock

// Salvage reads a possibly damaged trace forgivingly: undecodable blocks
// are quarantined and reported instead of failing the read, and a
// destroyed file header is recovered by scanning for block magics.
func Salvage(r io.ReaderAt, size int64, workers int) ([]Event, *SalvageReport, error) {
	return stream.Salvage(r, size, workers)
}

// SalvageTo rewrites the readable blocks of a damaged trace into w as a
// clean trace file openable with NewReader.
func SalvageTo(r io.ReaderAt, size int64, w io.Writer, workers int) (*SalvageReport, error) {
	return stream.SalvageTo(r, size, w, workers)
}

// RelaySend streams a tracer's buffers to a collector over TCP.
func RelaySend(tr *Tracer, addr string) (CaptureStats, error) { return relay.Send(tr, addr) }

// RelayHandler processes one incoming trace stream.
type RelayHandler = relay.Handler

// RelayServer accepts trace streams over TCP.
type RelayServer = relay.Server

// RelayListen starts a collector on addr.
func RelayListen(addr string, h RelayHandler) (*RelayServer, error) { return relay.Listen(addr, h) }

// RelaySaveHandler persists incoming streams as a trace file.
func RelaySaveHandler(w io.Writer) (RelayHandler, *relay.SaveStats) { return relay.SaveHandler(w) }

// RelayLiveHandler delivers incoming buffers on a channel for live
// analysis.
func RelayLiveHandler(buffered int) (RelayHandler, <-chan relay.LiveBlock) {
	return relay.LiveHandler(buffered)
}

// --- Analysis ------------------------------------------------------------------

// Trace is a decoded stream plus its naming context; the input to all
// analysis tools.
type Trace = analysis.Trace

// LockReport is the Figure 7 lock-contention report.
type LockReport = analysis.LockReport

// Profile is the Figure 6 statistical execution profile.
type Profile = analysis.Profile

// TimeBreak is the Figure 8 fine-grained time breakdown.
type TimeBreak = analysis.TimeBreak

// Timeline is the Figure 4 per-CPU timeline.
type Timeline = analysis.Timeline

// TimelineExport is the exact-span timeline export: JSON data plus the
// self-contained interactive HTML renderer (kmon -html, tracediff -html).
type TimelineExport = analysis.TimelineExport

// Occupancy is the windowed per-mode/per-CPU/per-major occupancy
// aggregate underlying the differential (tracediff) analysis.
type Occupancy = analysis.Occupancy

// WriteTimelineHTML renders one or more exported timelines stacked in a
// single self-contained interactive HTML page (no network references).
func WriteTimelineHTML(w io.Writer, title string, runs ...*TimelineExport) error {
	return analysis.WriteTimelineHTML(w, title, runs...)
}

// ListOptions filter event listings.
type ListOptions = analysis.ListOptions

// DeadlockReport is the lock-order cycle analysis (§4.2 correctness
// debugging).
type DeadlockReport = analysis.DeadlockReport

// MemReport is the hardware-counter memory hot-spot analysis (§2).
type MemReport = analysis.MemReport

// ValidationReport is the structural trace-invariant check.
type ValidationReport = analysis.ValidationReport

// BuildTrace constructs an analysis Trace from decoded events.
func BuildTrace(evs []Event, hz uint64, reg *Registry) *Trace {
	return analysis.Build(evs, hz, reg)
}

// --- Shared-memory cross-process tracing -------------------------------------
//
// The internal/shm subsystem maps a versioned segment file MAP_SHARED
// into any number of real OS processes, which then run the same lockless
// reserve/commit protocol as the in-process tracer directly on the shared
// words — the paper's "buffers are mapped into the address space of the
// application" design. A ktraced daemon (or an in-process ShmAgent) owns
// each segment, drains sealed buffers into the standard stream/relay
// paths, and writes off clients that die without detaching.

// ShmClient is a process's attachment to a shared trace segment.
type ShmClient = shm.Client

// ShmCPU is a per-processor logging handle over a shared segment.
type ShmCPU = shm.CPU

// ShmAgent is the daemon side of a shared segment (ktraced embeds one).
// It satisfies the same drain interfaces as a Tracer: pass it to
// stream.Capture or relay.SendReliable via the cmd/ktraced flow.
type ShmAgent = shm.Agent

// ShmGeometry describes a segment to create.
type ShmGeometry = shm.Geometry

// ShmInfo is a live segment snapshot (tracecheck -shm).
type ShmInfo = shm.Info

// Attach maps the shared trace segment at path and claims a client slot;
// the process then logs through ShmCPU handles with no system calls.
func Attach(path string) (*ShmClient, error) { return shm.Attach(path) }

// CreateShmSegment creates and publishes a shared trace segment, owned by
// the returned agent. Most deployments run cmd/ktraced instead.
func CreateShmSegment(path string, g ShmGeometry) (*ShmAgent, error) { return shm.Create(path, g) }

// InspectShmSegment snapshots a live segment through a read-only mapping
// without disturbing producers.
func InspectShmSegment(path string) (*ShmInfo, error) { return shm.Inspect(path) }
