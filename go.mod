module k42trace

go 1.22
