// Dynamic instrumentation example (§5): the paper argues that static,
// always-compiled-in events cover the well-known OS hot spots, while
// KernInst/DProbes-style dynamic probes complement them "when attempting
// to start monitoring in unanticipated ways an already installed and
// running machine". Here a probe is attached to the running simulated OS
// mid-execution — via the hot-swap-style timed callback — to answer a
// question nobody anticipated at build time: which files are opened, and
// how often, after a certain point in the run?
//
//	go run ./examples/dynamicprobe
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	ktrace "k42trace"
	"k42trace/internal/ksim"
	"k42trace/internal/sdet"
)

func main() {
	k, tr, err := ksim.NewTracedKernel(
		ksim.Config{CPUs: 4, Tuned: true},
		ktrace.Config{BufWords: 8192, NumBufs: 8})
	if err != nil {
		log.Fatal(err)
	}
	tr.EnableAll()

	// The unanticipated question arrives while the system is running: at
	// t=300µs attach a probe to the file-open path. The probe logs a
	// custom event through the same unified infrastructure, so the data
	// lands in the same per-CPU buffers as everything else.
	const attachAt = 300_000
	const evProbeOpen = 40 // MajorUser minor for our probe's events
	opens := map[uint64]int{}
	var probeID int
	k.At(attachAt, func(k *ksim.Kernel) {
		fmt.Printf("[t=%dus] attaching dynamic probe to file-open\n", attachAt/1000)
		probeID = k.AttachProbe(ksim.ProbeFileOpen, "open-counter",
			func(pc ksim.ProbeCtx) {
				opens[pc.Arg]++
				pc.Log(evProbeOpen, pc.Arg)
			})
	})
	// While the probe runs, narrow tracing to just its major — the
	// paper's "dynamically alter the types of events logged" knob. This
	// is the same ApplyMask the live collector drives remotely (see
	// tracecolld's POST /live/mask); the flip stamps a
	// TRACE_CTRL_MASK_CHANGE epoch marker on every CPU so the trace
	// records when visibility changed, instead of the quiet static
	// majors masquerading as a workload change.
	const narrowAt = 450_000
	k.At(narrowAt, func(k *ksim.Kernel) {
		tr.ApplyMask(ktrace.MajorControl.Bit() | ktrace.MajorUser.Bit())
		fmt.Printf("[t=%dus] narrowed trace mask to %s\n",
			narrowAt/1000, strings.Join(ktrace.MaskMajors(tr.Mask()), ","))
	})

	// And detach it again later — monitoring was temporary; tracing goes
	// back to everything.
	const detachAt = 900_000
	k.At(detachAt, func(k *ksim.Kernel) {
		fmt.Printf("[t=%dus] detaching probe after %d fires\n",
			detachAt/1000, k.ProbeFires())
		k.DetachProbe(probeID)
		tr.ApplyMask(^uint64(0))
	})

	res, err := k.Run(sdet.Workload(4, sdet.Params{
		ScriptsPerCPU: 4, CommandsPerScript: 6, Seed: 21}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run complete: %.3fms virtual, %d probe fires\n\n",
		float64(res.MakespanNs)/1e6, k.ProbeFires())

	// The in-handler aggregation.
	type fileCount struct {
		fid uint64
		n   int
	}
	var rows []fileCount
	for fid, n := range opens {
		rows = append(rows, fileCount{fid, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].fid < rows[j].fid
	})
	fmt.Println("opens observed by the probe (while attached):")
	for i, r := range rows {
		if i == 8 {
			break
		}
		fmt.Printf("  file %3d: %d opens\n", r.fid, r.n)
	}

	// The probe's events are also in the trace, interleaved with the
	// static ones — count them back out of the flight recorder, along
	// with the mask-change epoch markers the two ApplyMask calls left.
	probeEvents, maskMarks := 0, 0
	for cpu := 0; cpu < 4; cpu++ {
		evs, _ := tr.Dump(cpu)
		for _, e := range evs {
			if e.Major() == ktrace.MajorUser && e.Minor() == evProbeOpen {
				probeEvents++
			}
			if e.Major() == ktrace.MajorControl && e.Minor() == ktrace.CtrlMaskChange {
				maskMarks++
			}
		}
	}
	fmt.Printf("\n%d probe events recovered from the unified trace", probeEvents)
	fmt.Printf(" (may trail the fire count if the flight recorder wrapped)\n")
	fmt.Printf("%d mask-change epoch markers in the trace\n", maskMarks)
}
