// Network streaming example: a traced system relays its buffers to a
// collector over TCP as they seal, and the collector analyzes them live —
// "this event log may be examined while the system is running, written
// out to disk, or streamed over the network." The collector also saves
// the stream as a trace file and runs the timeline tool on it afterwards.
//
//	go run ./examples/netstream
package main

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log"
	"net"

	ktrace "k42trace"
	"k42trace/internal/ksim"
	"k42trace/internal/sdet"
	"k42trace/internal/stream"
)

func main() {
	// Collector: receive buffers, count events live, and tee the stream
	// into an in-memory trace file.
	var file bytes.Buffer
	liveEvents := 0
	liveBuffers := 0
	collectorDone := make(chan struct{})
	handler := func(remote net.Addr, bs *stream.BlockStream) error {
		defer close(collectorDone)
		wr, err := stream.NewWriter(&file, bs.Meta())
		if err != nil {
			return err
		}
		for {
			h, words, err := bs.Next()
			if errors.Is(err, io.EOF) {
				return nil
			}
			if err != nil {
				return err
			}
			// Live analysis: decode the buffer as it arrives.
			evs, _ := ktrace.DecodeBuffer(h.CPU, words)
			liveEvents += len(evs)
			liveBuffers++
			if liveBuffers%8 == 0 {
				fmt.Printf("  [collector] %d buffers, %d events so far (latest from cpu %d, seq %d)\n",
					liveBuffers, liveEvents, h.CPU, h.Seq)
			}
			if err := wr.WriteBlock(h, words); err != nil {
				return err
			}
		}
	}
	srv, err := ktrace.RelayListen("127.0.0.1:0", handler)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collector listening on %s\n", srv.Addr())

	// Traced system: run the SDET workload with a stream-mode tracer and
	// relay every sealed buffer to the collector.
	k, tr, err := ksim.NewTracedKernel(
		ksim.Config{CPUs: 4, Tuned: false, SamplePeriod: 100_000},
		ktrace.Config{BufWords: 4096, NumBufs: 8, Mode: ktrace.Stream})
	if err != nil {
		log.Fatal(err)
	}
	tr.EnableAll()
	sendDone := make(chan error, 1)
	go func() {
		_, err := ktrace.RelaySend(tr, srv.Addr())
		sendDone <- err
	}()
	res, err := k.Run(sdet.Workload(4, sdet.Params{ScriptsPerCPU: 3, CommandsPerScript: 4, Seed: 7}))
	if err != nil {
		log.Fatal(err)
	}
	tr.Stop()
	if err := <-sendDone; err != nil {
		log.Fatal(err)
	}
	<-collectorDone
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sender done: %d events over %d virtual ms\n",
		res.TraceEvents, res.MakespanNs/1e6)
	fmt.Printf("collector received %d buffers, %d events\n\n", liveBuffers, liveEvents)

	// The collected bytes are a valid trace file: run the timeline on it.
	rd, err := stream.NewReader(bytes.NewReader(file.Bytes()), int64(file.Len()))
	if err != nil {
		log.Fatal(err)
	}
	evs, _, err := rd.ReadAll()
	if err != nil {
		log.Fatal(err)
	}
	trace := ktrace.BuildTrace(evs, rd.Meta().ClockHz, ktrace.DefaultRegistry())
	tl := trace.Timeline(72)
	fmt.Print(tl.ASCII())
}
