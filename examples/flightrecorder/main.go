// Flight-recorder (correctness debugging) example: the tracer runs in
// circular-buffer mode, "so that if the kernel should crash, the most
// recent activity recorded by the tracing infrastructure is available"
// (§4.2). A worker deadlock-like wedge is detected and the last events are
// dumped from the debugger hook, filtered to the interesting majors.
//
//	go run ./examples/flightrecorder
package main

import (
	"fmt"
	"os"
	"sync"

	ktrace "k42trace"
)

// Event minors for a little request pipeline. Minors below 100 are taken
// by the OS simulator's events (registered in the shared default
// registry), so applications start at 100.
const (
	evReqArrive = 100
	evReqLock   = 100
	evReqDone   = 101
	evHeartbeat = 102
)

func main() {
	reg := ktrace.DefaultRegistry()
	reg.MustRegister(ktrace.MajorUser, evReqArrive, "FR_REQ_ARRIVE", "64 64",
		"request %0[%lld] arrived at stage %1[%lld]")
	reg.MustRegister(ktrace.MajorLock, evReqLock, "FR_REQ_LOCK", "64 64",
		"request %0[%lld] takes resource %1[%lld]")
	reg.MustRegister(ktrace.MajorUser, evReqDone, "FR_REQ_DONE", "64",
		"request %0[%lld] done")
	reg.MustRegister(ktrace.MajorUser, evHeartbeat, "FR_HEARTBEAT", "64",
		"heartbeat %0[%lld]")

	// Small circular buffers: only the most recent activity is retained —
	// exactly what a post-mortem needs.
	tr := ktrace.MustNew(ktrace.Config{
		CPUs:     2,
		BufWords: 512,
		NumBufs:  4,
		Mode:     ktrace.FlightRecorder,
	})
	tr.EnableAll()

	// Two workers each own a resource; request 600 makes each grab its own
	// resource and then reach for the other's — the classic cycle, and the
	// situation of the paper's file-system anecdote: "a printf solution
	// would both have been too clumsy and would have changed the timing
	// thereby masking the deadlock." The workers genuinely deadlock; only
	// the flight recorder knows what each was holding.
	var resA, resB sync.Mutex
	locks := [2]*sync.Mutex{&resA, &resB}
	wedged := make(chan int, 2)
	cross := make(chan struct{}) // closed once both workers hold their lock
	for w := 0; w < 2; w++ {
		go func(w int) {
			cpu := tr.CPU(w)
			mine, theirs := uint64(w), uint64(1-w)
			for req := 0; ; req++ {
				id := uint64(w*1_000_000 + req)
				cpu.Log2(ktrace.MajorUser, evReqArrive, id, uint64(w))
				locks[mine].Lock()
				cpu.Log2(ktrace.MajorLock, evReqLock, id, mine)
				if req == 600 {
					// Announce, wait until the other worker also holds its
					// resource, then reach across: a guaranteed cycle.
					wedged <- w
					<-cross
					locks[theirs].Lock() // blocks forever
					cpu.Log2(ktrace.MajorLock, evReqLock, id, theirs)
					locks[theirs].Unlock()
				}
				cpu.Log1(ktrace.MajorUser, evReqDone, id)
				locks[mine].Unlock()
			}
		}(w)
	}
	<-wedged
	<-wedged
	close(cross)
	fmt.Println("system wedged: both workers hold one resource and wait for the other")
	fmt.Println("dumping the flight recorder (most recent activity, oldest first)")
	fmt.Println()

	// The debugger hook: last events per CPU, filtered like the paper's
	// "features to show only certain type of events".
	for cpu := 0; cpu < 2; cpu++ {
		events, info := tr.Dump(cpu)
		fmt.Printf("--- cpu %d: %d events across %d buffers (anomalies: %d) ---\n",
			cpu, len(events), info.Buffers, info.Anomalies)
		tail := events
		if len(tail) > 6 {
			tail = tail[len(tail)-6:]
		}
		trace := ktrace.BuildTrace(tail, 1e9, reg)
		trace.List(os.Stdout, ktrace.ListOptions{})
	}

	// The tell-tale: each CPU's last lock event names a different resource,
	// and no FR_REQ_DONE follows — the cycle is visible in the trace.
	for cpu := 0; cpu < 2; cpu++ {
		tail := tr.TailEvents(cpu, 2)
		last := tail[len(tail)-1]
		if last.Major() == ktrace.MajorLock {
			fmt.Printf("cpu %d wedged after taking resource %d (request %d)\n",
				cpu, last.Data[1], last.Data[0])
		}
	}
	fmt.Println("\ndeadlock diagnosed from the flight recorder; exiting")
	// (The workers are intentionally left wedged; the process exits.)
}
