// Lock-contention tuning walkthrough: reproduces §4's methodology — run
// the SDET workload on the coarse (global-lock) kernel, use the lock
// analysis tool to find the most contended lock, observe the execution
// profile dominated by lock spinning, then run the tuned kernel and watch
// both the contention and the throughput gap disappear. "We went through a
// series of iterations where we used the lock analysis tool to determine
// the most contended lock in the system, fixed it, and then ran the tool
// again."
//
//	go run ./examples/lockcontention
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	ktrace "k42trace"
	"k42trace/internal/sdet"
	"k42trace/internal/stream"
)

func tracedRun(cpus int, tuned bool) (*ktrace.Trace, sdet.Point) {
	var buf bytes.Buffer
	pt, err := sdet.Run(sdet.Config{
		CPUs:   cpus,
		Tuned:  tuned,
		Trace:  sdet.TraceOn,
		Params: sdet.Params{ScriptsPerCPU: 4, CommandsPerScript: 5, Seed: 42},
		Sample: 50_000,
	}, &buf)
	if err != nil {
		log.Fatal(err)
	}
	rd, err := stream.NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		log.Fatal(err)
	}
	evs, _, err := rd.ReadAll()
	if err != nil {
		log.Fatal(err)
	}
	return ktrace.BuildTrace(evs, rd.Meta().ClockHz, ktrace.DefaultRegistry()), pt
}

func main() {
	const cpus = 16

	fmt.Printf("=== coarse kernel, %d processors ===\n\n", cpus)
	coarse, cpt := tracedRun(cpus, false)

	rep := coarse.LockStat()
	fmt.Println("lock analysis (Figure 7):")
	rep.Format(os.Stdout, 3)

	fmt.Println("execution profile (Figure 6):")
	prof := coarse.Profile(^uint64(0))
	prof.Format(os.Stdout, 6)

	fmt.Printf("\nthroughput: %.0f scripts/hour\n", cpt.Throughput)
	fmt.Printf("total lock wait: %.6fs\n\n", coarse.Seconds(rep.TotalWait()))

	fmt.Printf("=== tuned kernel (per-CPU pools, hashed dentry locks), %d processors ===\n\n", cpus)
	tuned, tpt := tracedRun(cpus, true)
	trep := tuned.LockStat()
	if len(trep.Rows) == 0 {
		fmt.Println("lock analysis: no seriously contended locks remain")
	} else {
		trep.Format(os.Stdout, 3)
	}
	fmt.Println("execution profile:")
	tuned.Profile(^uint64(0)).Format(os.Stdout, 6)

	fmt.Printf("\nthroughput: %.0f scripts/hour (%.2fx the coarse kernel)\n",
		tpt.Throughput, tpt.Throughput/cpt.Throughput)
	fmt.Printf("total lock wait: %.6fs (was %.6fs)\n",
		tuned.Seconds(trep.TotalWait()), coarse.Seconds(rep.TotalWait()))
}
