// Quickstart: instrument a concurrent Go application with the ktrace
// library — define self-describing events, log them from several workers
// through per-CPU handles without locks, stream the trace to a file, and
// run the analysis tools over it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"sync"

	ktrace "k42trace"
)

// Application event minors under MajorUser.
const (
	evJobStart  = 100
	evJobFinish = 101
	evCacheMiss = 102
)

func main() {
	// Register self-describing formats so generic tools can render our
	// events (the eventParse structure of the paper, §4.4).
	reg := ktrace.DefaultRegistry()
	reg.MustRegister(ktrace.MajorUser, evJobStart, "APP_JOB_START", "64 64",
		"worker %0[%lld] starts job %1[%lld]")
	reg.MustRegister(ktrace.MajorUser, evJobFinish, "APP_JOB_FINISH", "64 64 64",
		"worker %0[%lld] finished job %1[%lld] result %2[%llx]")
	reg.MustRegister(ktrace.MajorUser, evCacheMiss, "APP_CACHE_MISS", "64",
		"cache miss on key %0[%lld]")

	// A stream-mode tracer with one buffer set per worker ("CPU").
	const workers = 4
	tr := ktrace.MustNew(ktrace.Config{
		CPUs:     workers,
		BufWords: 4096, // 32 KiB alignment boundary
		NumBufs:  4,
		Mode:     ktrace.Stream,
	})
	tr.EnableAll() // tracing is compiled in but off until enabled

	// Drain sealed buffers to disk while the application runs.
	wait, err := ktrace.WriteTraceFile(tr, "quickstart.ktr")
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cpu := tr.CPU(w) // lockless per-processor handle
			for job := 0; job < 2000; job++ {
				cpu.Log2(ktrace.MajorUser, evJobStart, uint64(w), uint64(job))
				if job%7 == 0 {
					cpu.Log1(ktrace.MajorUser, evCacheMiss, uint64(job))
				}
				cpu.Log3(ktrace.MajorUser, evJobFinish,
					uint64(w), uint64(job), uint64(job*job))
			}
		}(w)
	}
	wg.Wait()
	tr.Stop()
	if _, err := wait(); err != nil {
		log.Fatal(err)
	}
	st := tr.Stats()
	fmt.Printf("logged %d events (%d words), %d buffer seals, %d CAS retries\n",
		st.Events, st.Words, st.Seals, st.Retries)

	// Read the trace back and list a window of it, Figure 5 style.
	trace, meta, dst, err := ktrace.OpenTraceFile("quickstart.ktr")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace file: %d CPUs, %d-word buffers, garbled=%v\n",
		meta.CPUs, meta.BufWords, dst.Garbled())
	fmt.Println("\nfirst 8 events:")
	trace.List(os.Stdout, ktrace.ListOptions{Limit: 8})
	fmt.Printf("\n(%d events total; try cmd/tracelist and cmd/kmon on quickstart.ktr)\n",
		len(trace.Events))
}
