// Benchmarks regenerating the paper's evaluation, one per figure/claim.
// The experiment index lives in DESIGN.md §3; measured-vs-paper numbers
// are recorded in EXPERIMENTS.md.
//
//	go test -bench=. -benchmem
package ktrace_test

import (
	"bytes"
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"testing"

	ktrace "k42trace"
	"k42trace/internal/analysis"
	"k42trace/internal/baseline"
	"k42trace/internal/clock"
	"k42trace/internal/diff"
	"k42trace/internal/event"
	"k42trace/internal/sdet"
	"k42trace/internal/stream"
)

// --- C1: disabled trace point ---------------------------------------------
//
// §3.2: "The cost of checking the trace mask is 4 machine instructions";
// disabled trace points must be nearly free so the infrastructure can stay
// compiled in always.

func BenchmarkC1MaskCheckDisabled(b *testing.B) {
	tr := ktrace.MustNew(ktrace.Config{CPUs: 1, BufWords: 4096, NumBufs: 4})
	tr.DisableAll()
	c := tr.CPU(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Log1(ktrace.MajorTest, 1, uint64(i))
	}
	if tr.Stats().Events != 0 {
		b.Fatal("disabled path logged events")
	}
}

// --- C2: enabled event cost vs payload size ---------------------------------
//
// §3.2: "A 1-word 64-bit event requires 91 cycles (100 ns on a 1GHz
// processor) with 11 cycles for each additional 64-bit word logged." The
// shape to reproduce is a small constant base plus a small linear per-word
// slope.

func BenchmarkC2EventCostPerWord(b *testing.B) {
	payload := make([]uint64, 256)
	for _, n := range []int{0, 1, 2, 4, 8, 16, 64, 256} {
		b.Run(fmt.Sprintf("words=%d", n), func(b *testing.B) {
			tr := ktrace.MustNew(ktrace.Config{CPUs: 1, BufWords: 16384, NumBufs: 4})
			tr.EnableAll()
			c := tr.CPU(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.LogWords(ktrace.MajorTest, 1, payload[:n])
			}
		})
	}
	// The fixed-arity fast paths (per-major-ID macros in K42).
	b.Run("Log1-fixed-arity", func(b *testing.B) {
		tr := ktrace.MustNew(ktrace.Config{CPUs: 1, BufWords: 16384, NumBufs: 4})
		tr.EnableAll()
		c := tr.CPU(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Log1(ktrace.MajorTest, 1, uint64(i))
		}
	})
	// The per-P batched fast path: one reservation CAS amortized over
	// batch events (2 words each) instead of one per event. batch=1 is
	// the degenerate case measuring pure fast-path dispatch overhead.
	for _, batch := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("Log1-perP-batch=%d", batch), func(b *testing.B) {
			tr := ktrace.MustNew(ktrace.Config{
				CPUs: 1, BufWords: 16384, NumBufs: 4, BatchWords: 2 * batch})
			tr.EnableAll()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.PLog1(ktrace.MajorTest, 1, uint64(i))
			}
			b.StopTimer()
			tr.Quiesce() // close parked batches so the counters are exact
			st := tr.Stats()
			if st.Events > 0 {
				b.ReportMetric(100*float64(st.FastHits)/float64(st.Events), "fast-hit-%")
			}
			if st.BatchOpens > 0 {
				b.ReportMetric(float64(st.FastHits)/float64(st.BatchOpens), "events/cas")
			}
		})
	}
}

// --- Dynamic control: ApplyMask propagation ---------------------------------
//
// §3.2: the trace mask exists so one can "dynamically alter the types of
// events logged". ApplyMask is the control-plane flavor of that knob: it
// swaps the mask, waits out each CPU's in-flight loggers, and stamps a
// CtrlMaskChange marker into every CPU's stream. This measures the cost of
// one full flip (swap + per-CPU drain + per-CPU marker), the latency an
// operator pays between POSTing /live/mask and the new visibility epoch
// starting. Pair with C1 for what the disabled majors cost afterwards.

func BenchmarkApplyMask(b *testing.B) {
	for _, cpus := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("cpus=%d", cpus), func(b *testing.B) {
			tr := ktrace.MustNew(ktrace.Config{
				CPUs: cpus, BufWords: 4096, NumBufs: 8, Mode: ktrace.Stream})
			go func() {
				for s := range tr.Sealed() {
					tr.Release(s)
				}
			}()
			tr.EnableAll()
			narrow := ktrace.MajorControl.Bit() | ktrace.MajorTest.Bit()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%2 == 0 {
					tr.ApplyMask(narrow)
				} else {
					tr.ApplyMask(^uint64(0))
				}
			}
			b.StopTimer()
			tr.Stop()
		})
	}
}

// --- C3 / Figure 3: SDET tracing overhead -----------------------------------
//
// §4: the Figure 3 data was taken with the trace infrastructure compiled
// in (mask disabled) at under 1% cost. The reported metric is the virtual
// makespan of the simulated SDET run in each tracing configuration.

func BenchmarkC3TracingOverheadSDET(b *testing.B) {
	p := sdet.Params{ScriptsPerCPU: 3, CommandsPerScript: 5, Seed: 11}
	for _, mode := range []sdet.TraceMode{sdet.TraceCompiledOut, sdet.TraceMasked, sdet.TraceOn} {
		b.Run(mode.String(), func(b *testing.B) {
			var last sdet.Point
			for i := 0; i < b.N; i++ {
				pt, err := sdet.Run(sdet.Config{CPUs: 4, Tuned: true, Trace: mode, Params: p}, nil)
				if err != nil {
					b.Fatal(err)
				}
				last = pt
			}
			b.ReportMetric(float64(last.MakespanNs), "virtual-ns")
			b.ReportMetric(float64(last.Events), "events")
		})
	}
}

// --- Figure 3: SDET throughput vs processors ---------------------------------
//
// The headline graph: scripts/hour against processor count for the tuned
// (K42-like) and coarse (global-lock) kernels, tracing compiled in but
// masked, exactly the paper's benchmarking configuration.

func BenchmarkFigure3SDET(b *testing.B) {
	p := sdet.Params{ScriptsPerCPU: 4, CommandsPerScript: 6, Seed: 42}
	for _, cpus := range []int{1, 2, 4, 8, 16, 24} {
		for _, tuned := range []bool{true, false} {
			name := fmt.Sprintf("cpus=%d/%s", cpus, map[bool]string{true: "tuned", false: "coarse"}[tuned])
			b.Run(name, func(b *testing.B) {
				var last sdet.Point
				for i := 0; i < b.N; i++ {
					pt, err := sdet.Run(sdet.Config{
						CPUs: cpus, Tuned: tuned, Trace: sdet.TraceMasked, Params: p}, nil)
					if err != nil {
						b.Fatal(err)
					}
					last = pt
				}
				b.ReportMetric(last.Throughput, "scripts/hour")
			})
		}
	}
}

// --- C4/C5: lockless vs the baselines, and scalability in writers -----------
//
// §4.1: applying the lockless logging, per-CPU buffers, and cheap
// timestamps to Linux gave "an order of magnitude performance
// improvement". Writers share CPU slots round-robin; per-CPU designs give
// each writer its own slot.

func BenchmarkC4LoggingThroughput(b *testing.B) {
	clk := clock.NewSync()
	factories := []struct {
		name string
		mk   func(cpus int) baseline.Logger
	}{
		{"lockless-percpu", func(c int) baseline.Logger { return baseline.NewLockless(c, 16384, 4, clk) }},
		{"lock-percpu", func(c int) baseline.Logger { return baseline.NewPerCPULockLogger(c, 16384, clk) }},
		{"lock-shared", func(c int) baseline.Logger { return baseline.NewLockLogger(16384, clk) }},
		{"fixed-slots", func(c int) baseline.Logger { return baseline.NewFixedLogger(c, 4096, clk) }},
		{"syscall", func(c int) baseline.Logger { return baseline.NewSyscallLogger(16384, clk) }},
	}
	for _, f := range factories {
		for _, writers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/writers=%d", f.name, writers), func(b *testing.B) {
				l := f.mk(writers)
				defer l.Close()
				per := b.N / writers
				if per == 0 {
					per = 1
				}
				b.ResetTimer()
				var wg sync.WaitGroup
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for i := 0; i < per; i++ {
							l.Log1(w, event.MajorTest, 1, uint64(i))
						}
					}(w)
				}
				wg.Wait()
			})
		}
	}
}

// --- C4 across address spaces: the shared-memory producer ----------------
//
// §2: applications log "directly into the buffers via memory mapped
// access" — mapping is what makes user-level tracing cost what kernel
// tracing costs, instead of a system call per event. Rows: a client
// attached to a daemon-owned segment (the CAS protocol running on the
// mmap'd words, agent draining concurrently), the in-process streaming
// tracer on identical geometry, and the syscall-per-event baseline that
// user-mapped buffers exist to avoid.

func BenchmarkShmLog(b *testing.B) {
	const bufWords, numBufs = 16384, 4

	b.Run("shm-client", func(b *testing.B) {
		ag, err := ktrace.CreateShmSegment(filepath.Join(b.TempDir(), "bench.seg"),
			ktrace.ShmGeometry{CPUs: 1, BufWords: bufWords, NumBufs: numBufs, MaxClients: 4})
		if err != nil {
			b.Fatal(err)
		}
		wait := stream.CaptureAsync(ag, io.Discard)
		cl, err := ktrace.Attach(ag.Path())
		if err != nil {
			b.Fatal(err)
		}
		c := cl.CPU(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Log1(ktrace.MajorTest, 1, uint64(i))
		}
		b.StopTimer()
		if err := cl.Detach(); err != nil {
			b.Fatal(err)
		}
		ag.Stop()
		if _, err := wait(); err != nil {
			b.Fatal(err)
		}
		ag.Close()
	})

	// Batched client: one reservation CAS on the shared words per batch
	// events instead of per event — the same amortization the in-process
	// per-P path gets, available across address spaces.
	for _, batch := range []int{4, 16} {
		b.Run(fmt.Sprintf("shm-client-batch=%d", batch), func(b *testing.B) {
			ag, err := ktrace.CreateShmSegment(filepath.Join(b.TempDir(), "bench.seg"),
				ktrace.ShmGeometry{CPUs: 1, BufWords: bufWords, NumBufs: numBufs, MaxClients: 4})
			if err != nil {
				b.Fatal(err)
			}
			wait := stream.CaptureAsync(ag, io.Discard)
			cl, err := ktrace.Attach(ag.Path())
			if err != nil {
				b.Fatal(err)
			}
			c := cl.CPU(0)
			var bt ktrace.Batch
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%batch == 0 && !c.OpenBatch(&bt, ktrace.MajorTest, 2*batch) {
					b.Fatal("OpenBatch failed")
				}
				bt.Log1(ktrace.MajorTest, 1, uint64(i))
			}
			bt.Close()
			b.StopTimer()
			if err := cl.Detach(); err != nil {
				b.Fatal(err)
			}
			ag.Stop()
			if _, err := wait(); err != nil {
				b.Fatal(err)
			}
			ag.Close()
		})
	}

	b.Run("in-process", func(b *testing.B) {
		tr := ktrace.MustNew(ktrace.Config{
			CPUs: 1, BufWords: bufWords, NumBufs: numBufs, Mode: ktrace.Stream})
		tr.EnableAll()
		wait := ktrace.CaptureAsync(tr, io.Discard)
		c := tr.CPU(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Log1(ktrace.MajorTest, 1, uint64(i))
		}
		b.StopTimer()
		tr.Stop()
		if _, err := wait(); err != nil {
			b.Fatal(err)
		}
	})

	b.Run("syscall-baseline", func(b *testing.B) {
		l := baseline.NewSyscallLogger(bufWords, clock.NewSync())
		defer l.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l.Log1(0, ktrace.MajorTest, 1, uint64(i))
		}
	})
}

// --- C4 in virtual time: locked vs lockless tracing at scale ----------------
//
// The wall-clock comparison above runs on however many host cores exist;
// this one reproduces the multiprocessor effect deterministically in the
// simulator: 16 virtual CPUs logging full event streams through per-CPU
// lockless buffers versus one lock-serialized global buffer (the design
// LTT replaced for its "order of magnitude" improvement).

func BenchmarkC4VirtualLockedVsLockless(b *testing.B) {
	p := sdet.Params{ScriptsPerCPU: 3, CommandsPerScript: 5, Seed: 11}
	for _, locked := range []bool{false, true} {
		name := "lockless-percpu"
		if locked {
			name = "locked-global"
		}
		b.Run(name, func(b *testing.B) {
			var last sdet.Point
			for i := 0; i < b.N; i++ {
				pt, err := sdet.Run(sdet.Config{
					CPUs: 16, Tuned: true, Trace: sdet.TraceOn,
					Params: p, LockedTrace: locked}, nil)
				if err != nil {
					b.Fatal(err)
				}
				last = pt
			}
			b.ReportMetric(float64(last.MakespanNs), "virtual-ns")
			b.ReportMetric(last.Throughput, "scripts/hour")
		})
	}
}

// --- C6: filler waste and boundary fits --------------------------------------
//
// §3.2: "30 to 40 percent of events end exactly on a buffer boundary and
// because there are very few events larger than 4 64-bit words, this
// alignment in practice wastes very little space." Metrics: filler words
// as a percent of logged words, and exact-boundary fits as a percent of
// buffer transitions.

func BenchmarkC6FillerWaste(b *testing.B) {
	tr := ktrace.MustNew(ktrace.Config{CPUs: 1, BufWords: 16384, NumBufs: 4})
	tr.EnableAll()
	c := tr.CPU(0)
	payload := make([]uint64, 4)
	rng := uint64(0x9e3779b97f4a7c15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The paper's event mix: mostly small events, few above 4 words,
		// pseudo-randomly sized (a deterministic cyclic mix would either
		// always or never land on boundaries).
		rng = rng*6364136223846793005 + 1442695040888963407
		c.LogWords(ktrace.MajorTest, 1, payload[:(rng>>33)%5])
	}
	b.StopTimer()
	st := tr.Stats()
	if st.Words+st.FillerWords > 0 {
		b.ReportMetric(100*float64(st.FillerWords)/float64(st.Words+st.FillerWords), "filler-%")
	}
	if st.Anchors > 0 {
		b.ReportMetric(100*float64(st.ExactFit)/float64(st.Anchors), "exact-fit-%")
	}
}

// --- C7: random access into a large trace ------------------------------------
//
// §3.2: tools must reach the middle of a multi-buffer trace without
// scanning it. Seek decodes one block via the fixed-stride index; scan
// decodes every block up to the same point.

var c7Trace struct {
	once sync.Once
	data []byte
}

func c7File(b *testing.B) []byte {
	c7Trace.once.Do(func() {
		tr := ktrace.MustNew(ktrace.Config{
			CPUs: 1, BufWords: 1024, NumBufs: 4,
			Mode: ktrace.Stream, Clock: clock.NewManual(1),
		})
		tr.EnableAll()
		var buf bytes.Buffer
		wait := stream.CaptureAsync(tr, &buf)
		c := tr.CPU(0)
		for i := 0; i < 400_000; i++ {
			c.Log2(ktrace.MajorTest, 1, uint64(i), uint64(i))
		}
		tr.Stop()
		if _, err := wait(); err != nil {
			panic(err)
		}
		c7Trace.data = buf.Bytes()
	})
	return c7Trace.data
}

func BenchmarkC7RandomAccess(b *testing.B) {
	data := c7File(b)
	rd, err := stream.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		b.Fatal(err)
	}
	mid := rd.NumBlocks() / 2
	b.Run("seek-to-middle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := rd.Events(mid); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scan-to-middle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for k := 0; k <= mid; k++ {
				if _, _, err := rd.Events(k); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("build-time-index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rd.BuildIndex(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Figures 4-8: the analysis tools -----------------------------------------
//
// These regenerate the paper's figures from a canned traced SDET run and
// measure the tools themselves.

var figTrace struct {
	once sync.Once
	tr   *ktrace.Trace
}

func figureTrace(b *testing.B) *ktrace.Trace {
	figTrace.once.Do(func() {
		var buf bytes.Buffer
		p := sdet.Params{ScriptsPerCPU: 4, CommandsPerScript: 5, Seed: 9}
		if _, err := sdet.Run(sdet.Config{
			CPUs: 8, Tuned: false, Trace: sdet.TraceOn, Params: p, Sample: 50_000,
		}, &buf); err != nil {
			panic(err)
		}
		rd, err := stream.NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			panic(err)
		}
		evs, _, err := rd.ReadAll()
		if err != nil {
			panic(err)
		}
		figTrace.tr = ktrace.BuildTrace(evs, rd.Meta().ClockHz, ktrace.DefaultRegistry())
	})
	return figTrace.tr
}

func BenchmarkFigure4Timeline(b *testing.B) {
	tr := figureTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl := tr.Timeline(100, "TRC_USER_RUN_UL_LOADER")
		if len(tl.Cells) == 0 {
			b.Fatal("empty timeline")
		}
	}
}

func BenchmarkFigure5Listing(b *testing.B) {
	tr := figureTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out bytes.Buffer
		if _, err := tr.List(&out, ktrace.ListOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6Profile(b *testing.B) {
	tr := figureTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := tr.Profile(^uint64(0))
		if p.Total == 0 {
			b.Fatal("no samples")
		}
	}
}

func BenchmarkFigure7LockStat(b *testing.B) {
	tr := figureTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := tr.LockStat()
		if len(rep.Rows) == 0 {
			b.Fatal("no contention")
		}
	}
}

func BenchmarkFigure8TimeBreak(b *testing.B) {
	tr := figureTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb := tr.TimeBreak(2)
		if tb.TotalNs() == 0 {
			b.Fatal("no attribution")
		}
	}
}

// --- Ablations: mitigation and readout features -------------------------------

// BenchmarkAblationZeroFill measures §3.1's zero-fill mitigation: the cost
// lands on the consumer's Release, not the logging path.
func BenchmarkAblationZeroFill(b *testing.B) {
	for _, zero := range []bool{false, true} {
		name := "plain-release"
		if zero {
			name = "zero-fill-release"
		}
		b.Run(name, func(b *testing.B) {
			tr := ktrace.MustNew(ktrace.Config{CPUs: 1, BufWords: 16384, NumBufs: 4,
				Mode: ktrace.Stream, ZeroFill: zero})
			tr.EnableAll()
			go func() {
				for s := range tr.Sealed() {
					tr.Release(s)
				}
			}()
			c := tr.CPU(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Log1(ktrace.MajorTest, 1, uint64(i))
			}
			b.StopTimer()
			tr.Stop()
		})
	}
}

// BenchmarkRedactBuffer measures the per-user readout filter (§5 future
// work) over one full buffer.
func BenchmarkRedactBuffer(b *testing.B) {
	tr := ktrace.MustNew(ktrace.Config{CPUs: 1, BufWords: 16384, NumBufs: 4})
	tr.EnableAll()
	c := tr.CPU(0)
	for i := 0; i < 8000; i++ {
		c.Log2(ktrace.Major(uint8(i%8)+1), 1, uint64(i), uint64(i))
	}
	words := make([]uint64, 16384)
	evs, _ := ktrace.DecodeBuffer(0, words)
	_ = evs
	visible := ktrace.VisibleMask(ktrace.MajorMem, ktrace.MajorIO)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ktrace.Redact(words, visible)
	}
}

// BenchmarkCrashDump measures writing and re-reading a full post-mortem
// image (2 CPUs x 4 x 16384-word buffers = 1 MiB of trace memory).
func BenchmarkCrashDump(b *testing.B) {
	tr := ktrace.MustNew(ktrace.Config{CPUs: 2, BufWords: 16384, NumBufs: 4})
	tr.EnableAll()
	for i := 0; i < 50000; i++ {
		tr.CPU(i%2).Log1(ktrace.MajorTest, 1, uint64(i))
	}
	b.Run("write", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := tr.WriteCrashDump(&buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	var img bytes.Buffer
	if err := tr.WriteCrashDump(&img); err != nil {
		b.Fatal(err)
	}
	b.Run("read-and-decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d, err := ktrace.ReadCrashDump(bytes.NewReader(img.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := d.Events(0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablation: stale timestamps ----------------------------------------------
//
// Measures the cost of the correct in-loop timestamp re-read against the
// unsafe pre-loop read, showing the monotonicity guarantee is nearly free.

func BenchmarkAblationTimestampReread(b *testing.B) {
	for _, stale := range []bool{false, true} {
		name := "in-loop-reread"
		if stale {
			name = "stale-preloop"
		}
		b.Run(name, func(b *testing.B) {
			tr := ktrace.MustNew(ktrace.Config{
				CPUs: 1, BufWords: 16384, NumBufs: 4, UnsafeStaleTimestamp: stale})
			tr.EnableAll()
			c := tr.CPU(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Log1(ktrace.MajorTest, 1, uint64(i))
			}
		})
	}
}

// --- Parallel analysis pipeline ----------------------------------------------
//
// The read-side scalability story: block-level fan-out over the Reader's
// random-access points, per-CPU mergeable accumulators, and a k-way heap
// merge replacing the global sort. Output is bit-identical to sequential
// at every worker count (see the determinism tests); these benchmarks
// capture the throughput-vs-workers curve and the merge-vs-sort gap.

var pbench struct {
	once sync.Once
	data []byte
}

// pbenchFile builds a multi-MB, multi-hundred-block trace over 4 CPU
// streams — large enough that block decode dominates and fan-out matters.
func pbenchFile(b *testing.B) []byte {
	pbench.once.Do(func() {
		tr := ktrace.MustNew(ktrace.Config{
			CPUs: 4, BufWords: 1024, NumBufs: 8,
			Mode: ktrace.Stream, Clock: clock.NewManual(1),
		})
		tr.EnableAll()
		var buf bytes.Buffer
		wait := stream.CaptureAsync(tr, &buf)
		for i := 0; i < 600_000; i++ {
			c := tr.CPU(i % 4)
			if i%5 == 0 {
				c.Log4(ktrace.MajorTest, 2, uint64(i), 1, 2, 3)
			} else {
				c.Log2(ktrace.MajorTest, 1, uint64(i), uint64(i))
			}
		}
		tr.Stop()
		if _, err := wait(); err != nil {
			panic(err)
		}
		pbench.data = buf.Bytes()
	})
	return pbench.data
}

func BenchmarkParallelAnalysis(b *testing.B) {
	data := pbenchFile(b)
	rd, err := stream.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		b.Fatal(err)
	}
	if rd.NumBlocks() < 64 {
		b.Fatalf("bench trace has %d blocks, want >= 64", rd.NumBlocks())
	}
	workers := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		workers = append(workers, n)
	}
	for _, w := range workers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				evs, _, err := rd.ReadAllParallel(w)
				if err != nil {
					b.Fatal(err)
				}
				tr := ktrace.BuildTrace(evs, 1, ktrace.DefaultRegistry())
				if rows := tr.OverviewParallel(w); len(rows) == 0 {
					b.Fatal("no overview rows")
				}
			}
		})
	}
}

func BenchmarkKWayMerge(b *testing.B) {
	data := pbenchFile(b)
	rd, err := stream.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		b.Fatal(err)
	}
	evs, _, err := rd.ReadAllParallel(0)
	if err != nil {
		b.Fatal(err)
	}
	streams := analysis.SplitByCPU(evs)
	n := 0
	for _, s := range streams {
		n += len(s)
	}
	b.Run("kway-heap-merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := stream.MergeByTime(streams...); len(got) != n {
				b.Fatal("merge lost events")
			}
		}
	})
	// The pre-parallel approach: concatenate in block order, then one
	// global stable sort by (Time, CPU).
	b.Run("global-stable-sort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			all := make([]event.Event, 0, n)
			for _, s := range streams {
				all = append(all, s...)
			}
			sort.SliceStable(all, func(i, j int) bool {
				if all[i].Time != all[j].Time {
					return all[i].Time < all[j].Time
				}
				return all[i].CPU < all[j].CPU
			})
		}
	})
}

// --- Differential analysis ----------------------------------------------------
//
// tracediff over the canonical coarse/tuned fixture pair: alignment,
// windowed occupancy on both runs, lock/profile/process deltas, and the
// divergence score, at several fan-out widths. The report is byte-identical
// at every width (TestTraceDiffToolParity); this captures the cost curve.

func BenchmarkTraceDiff(b *testing.B) {
	open := func(name string) *ktrace.Trace {
		tr, _, _, err := ktrace.OpenTraceFileParallel(filepath.Join("testdata", "corpus", name), 0)
		if err != nil {
			b.Skipf("corpus fixture missing (run go test . -update): %v", err)
		}
		return tr
	}
	coarse, tuned := open("coarse.ktr"), open("tuned.ktr")
	for _, w := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep := diff.Diff(coarse, tuned, diff.Options{Workers: w})
				if rep.Divergence == 0 {
					b.Fatal("fixture pair diffed to zero")
				}
			}
		})
	}
}

// BenchmarkBlockDecode guards the zero-allocation decode path: allocs/op
// for a warm ReadBlockInto must stay at 0 (the DecodeBuffer sub-bench
// shows the remaining per-event cost for contrast).
func BenchmarkBlockDecode(b *testing.B) {
	data := pbenchFile(b)
	rd, err := stream.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("read-block-into", func(b *testing.B) {
		var bb stream.BlockBuf
		if _, _, err := rd.ReadBlockInto(0, &bb); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := rd.ReadBlockInto(i%rd.NumBlocks(), &bb); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("events-per-block", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := rd.Events(i % rd.NumBlocks()); err != nil {
				b.Fatal(err)
			}
		}
	})
}
