package ktrace

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"k42trace/internal/event"
	"k42trace/internal/sdet"
	"k42trace/internal/store"
	"k42trace/internal/stream"
)

const storeCorpusDir = "testdata/corpus/store"

// goldenDigestAbove: full event listings run to megabytes; above this
// size the golden pins a digest of the exact bytes instead of the bytes
// themselves. Any single-byte change in the response still fails.
const goldenDigestAbove = 64 << 10

func goldenForm(s string) string {
	if len(s) <= goldenDigestAbove {
		return s
	}
	return fmt.Sprintf("sha256:%x bytes:%d lines:%d\n",
		sha256.Sum256([]byte(s)), len(s), strings.Count(s, "\n"))
}

// buildStoreCorpusSources generates the two tenant spills: distinct seeds
// so the tenants hold different streams and isolation failures would show
// up as golden diffs.
func buildStoreCorpusSources(t testing.TB) (acme, globex []byte) {
	t.Helper()
	var a, g bytes.Buffer
	if _, err := sdet.Run(sdet.Config{CPUs: 4, Trace: sdet.TraceOn,
		Params: sdet.Params{ScriptsPerCPU: 10, CommandsPerScript: 12, Seed: 11},
		Sample: 10_000, HWCSample: 12_000}, &a); err != nil {
		t.Fatal(err)
	}
	if _, err := sdet.Run(sdet.Config{CPUs: 2, Trace: sdet.TraceOn,
		Params: sdet.Params{ScriptsPerCPU: 10, CommandsPerScript: 12, Threads: true, Seed: 12},
		Sample: 12_000}, &g); err != nil {
		t.Fatal(err)
	}
	return a.Bytes(), g.Bytes()
}

func readSpill(t testing.TB, data []byte) ([]event.Event, stream.Meta) {
	t.Helper()
	rd, err := stream.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	evs, _, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return evs, rd.Meta()
}

// storeCorpusQueries pins the query surface: ranges and predicates over
// the event listing plus every aggregation form. Times are quartiles of
// the tenant's own stream, so the corpus is a pure function of the spills.
func storeCorpusQueries(tenant string, evs []event.Event) map[string]store.Params {
	lo, hi := evs[0].Time, evs[len(evs)-1].Time
	q1, q3 := lo+(hi-lo)/4, lo+3*(hi-lo)/4
	return map[string]store.Params{
		"events-all":       {Tenant: tenant},
		"events-mid":       {Tenant: tenant, From: q1, To: q3},
		"events-sched":     {Tenant: tenant, HasMajor: true, Major: event.MajorSched},
		"events-lock-mid":  {Tenant: tenant, From: q1, To: q3, HasMajor: true, Major: event.MajorLock},
		"events-pid2":      {Tenant: tenant, HasPid: true, Pid: 2},
		"events-limit":     {Tenant: tenant, Limit: 50},
		"agg-overview":     {Tenant: tenant, Agg: "overview"},
		"agg-lockstat":     {Tenant: tenant, Agg: "lockstat"},
		"agg-profile":      {Tenant: tenant, Agg: "profile"},
		"agg-timebreak":    {Tenant: tenant, Agg: "timebreak", HasPid: true, Pid: 1},
		"agg-memprofile":   {Tenant: tenant, Agg: "memprofile", From: q1},
		"agg-overview-mid": {Tenant: tenant, From: q1, To: q3, Agg: "overview"},
	}
}

// TestGoldenStoreCorpus pins the whole store query path byte-for-byte: a
// two-tenant store is rebuilt from the checked-in spills, every pinned
// query runs at 1 and 8 scan workers, the formatted responses must agree
// exactly, match the checked-in goldens, and — for event listings — match
// the offline filter of the source spill rendered through the same
// formatter. Run with -update to regenerate spills and goldens together.
func TestGoldenStoreCorpus(t *testing.T) {
	if *updateCorpus {
		if err := os.MkdirAll(storeCorpusDir, 0o755); err != nil {
			t.Fatal(err)
		}
		acme, globex := buildStoreCorpusSources(t)
		for name, data := range map[string][]byte{
			"acme.ktr":   acme,
			"globex.ktr": globex,
		} {
			if err := os.WriteFile(filepath.Join(storeCorpusDir, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	spills, err := filepath.Glob(filepath.Join(storeCorpusDir, "*.ktr"))
	if err != nil || len(spills) == 0 {
		t.Fatalf("no store corpus spills in %s (run go test . -update): %v", storeCorpusDir, err)
	}

	// Rebuild the store from the spills with a pinned clock and a span that
	// forces a multi-segment split, so index pruning is actually exercised.
	type tenantSrc struct {
		name string
		evs  []event.Event
		meta stream.Meta
	}
	var srcs []tenantSrc
	var span uint64
	for _, path := range spills {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		evs, meta := readSpill(t, data)
		name := strings.TrimSuffix(filepath.Base(path), ".ktr")
		srcs = append(srcs, tenantSrc{name, evs, meta})
		if w := (evs[len(evs)-1].Time - evs[0].Time) / 7; span == 0 || w < span {
			span = w
		}
	}
	fixed := time.Unix(1_700_000_000, 0)
	s, err := store.Open(store.Options{
		Root:        t.TempDir(),
		SegmentSpan: span,
		Now:         func() time.Time { return fixed },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i, path := range spills {
		res, err := s.IngestFile(srcs[i].name, path)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Segments) < 2 {
			t.Fatalf("tenant %s landed in %d segment(s); span too wide to exercise pruning",
				srcs[i].name, len(res.Segments))
		}
	}

	for _, src := range srcs {
		for qname, p := range storeCorpusQueries(src.name, src.evs) {
			t.Run(src.name+"/"+qname, func(t *testing.T) {
				var base string
				for i, w := range corpusWorkerCounts {
					r, err := s.Query(p)
					if err != nil {
						t.Fatal(err)
					}
					var out strings.Builder
					if err := r.Format(&out, w); err != nil {
						t.Fatal(err)
					}
					if i == 0 {
						base = out.String()
						continue
					}
					if out.String() != base {
						t.Errorf("workers=%d: response differs from workers=%d",
							w, corpusWorkerCounts[0])
					}
				}
				// Event listings must equal the offline filter of the source
				// spill rendered through the same formatter.
				if p.Agg == "" || p.Agg == "events" {
					off := &store.Result{Params: p, Hz: src.meta.ClockHz,
						Events: store.MatchStream(src.evs, p)}
					var want strings.Builder
					if err := off.Format(&want, 1); err != nil {
						t.Fatal(err)
					}
					if base != want.String() {
						t.Errorf("store response diverges from filtered ReadAll of %s.ktr", src.name)
					}
				}
				golden := filepath.Join(storeCorpusDir, fmt.Sprintf("%s.%s.golden", src.name, qname))
				pinned := goldenForm(base)
				if *updateCorpus {
					if err := os.WriteFile(golden, []byte(pinned), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(golden)
				if err != nil {
					t.Fatalf("golden missing (run go test . -update): %v", err)
				}
				if pinned != string(want) {
					t.Errorf("response diverged from %s", golden)
				}
			})
		}
	}
}
