// Command timebreak reproduces the paper's Figure 8: the fine-grained
// attribution of a process's time among user computation, system calls
// (with per-call costs, counts, and contained events), IPC activity, and
// page faults — plus, for server processes, the time spent servicing IPC
// calls made by other applications, categorized by function.
//
// Usage:
//
//	timebreak -pid N trace.ktr
package main

import (
	"flag"
	"fmt"
	"os"

	ktrace "k42trace"
	"k42trace/internal/analysis"
)

func main() {
	pid := flag.Uint64("pid", ^uint64(0), "process to break down")
	all := flag.Bool("all", false, "print the per-process overview instead")
	jobs := flag.Int("j", 0, "decode/analysis workers (0 = all cores)")
	flag.Parse()
	if flag.NArg() != 1 || (*pid == ^uint64(0) && !*all) {
		fmt.Fprintln(os.Stderr, "usage: timebreak (-pid N | -all) trace.ktr")
		flag.PrintDefaults()
		os.Exit(2)
	}
	trace, _, _, err := ktrace.OpenTraceFileParallel(flag.Arg(0), *jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "timebreak:", err)
		os.Exit(1)
	}
	if *all {
		if err := analysis.FormatOverview(os.Stdout, trace.OverviewParallel(*jobs)); err != nil {
			fmt.Fprintln(os.Stderr, "timebreak:", err)
			os.Exit(1)
		}
		return
	}
	tb := trace.TimeBreakParallel(*pid, *jobs)
	if tb.TotalNs() == 0 && len(tb.Serviced) == 0 {
		fmt.Fprintf(os.Stderr, "timebreak: no activity for pid %d in trace\n", *pid)
		os.Exit(1)
	}
	if err := tb.Format(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "timebreak:", err)
		os.Exit(1)
	}
}
