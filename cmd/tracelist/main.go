// Command tracelist prints a trace file as a textual event listing — the
// paper's Figure 5 tool: time in seconds, event name, and the event's
// self-described rendering.
//
// Usage:
//
//	tracelist [-major SCHED,LOCK] [-from s] [-to s] [-n max] [-control] trace.ktr
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	ktrace "k42trace"
)

func main() {
	majors := flag.String("major", "", "comma-separated major classes to include (e.g. SCHED,LOCK); empty = all")
	from := flag.Float64("from", 0, "start of time window, seconds")
	to := flag.Float64("to", 0, "end of time window, seconds (0 = end of trace)")
	limit := flag.Int("n", 0, "maximum lines (0 = unlimited)")
	control := flag.Bool("control", false, "include infrastructure events (anchors, fillers metadata)")
	pid := flag.Int64("pid", -1, "only events while this process was scheduled (-1 = all)")
	cpu := flag.Int("cpu", -1, "only events from this processor (-1 = all)")
	jobs := flag.Int("j", 0, "decode workers (0 = all cores)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracelist [flags] trace.ktr")
		flag.PrintDefaults()
		os.Exit(2)
	}
	trace, meta, st, err := ktrace.OpenTraceFileParallel(flag.Arg(0), *jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracelist:", err)
		os.Exit(1)
	}
	if st.Garbled() {
		fmt.Fprintf(os.Stderr, "tracelist: warning: %d garbled words skipped\n", st.SkippedWords)
	}
	opt := ktrace.ListOptions{
		Limit:       *limit,
		ShowControl: *control,
		From:        uint64(*from * float64(meta.ClockHz)),
		To:          uint64(*to * float64(meta.ClockHz)),
	}
	if *pid >= 0 {
		opt.HasPid = true
		opt.Pid = uint64(*pid)
	}
	if *cpu >= 0 {
		opt.HasCPU = true
		opt.CPU = *cpu
	}
	if *majors != "" {
		byName := map[string]ktrace.Major{}
		for m := ktrace.Major(0); m < ktrace.NumMajors; m++ {
			byName[m.String()] = m
		}
		for _, name := range strings.Split(*majors, ",") {
			m, ok := byName[strings.ToUpper(strings.TrimSpace(name))]
			if !ok {
				fmt.Fprintf(os.Stderr, "tracelist: unknown major %q\n", name)
				os.Exit(2)
			}
			opt.Majors = append(opt.Majors, m)
		}
	}
	if _, err := trace.List(os.Stdout, opt); err != nil {
		fmt.Fprintln(os.Stderr, "tracelist:", err)
		os.Exit(1)
	}
}
