// Command tracediff is the differential analyzer: it aligns two traces of
// "the same" workload — a coarse vs a tuned kernel, before vs after a fix —
// and reports where time went differently: per-mode occupancy deltas,
// per-CPU busy/lock shifts, lock-contention deltas keyed by acquisition
// chain, profile and per-process deltas, and a window-by-window divergence
// score. Identical inputs diff to exactly zero.
//
// Usage:
//
//	tracediff [-j N] [-top N] [-windows N] [-anchor EVENT]...
//	          [-json] [-html out.html] [-max-divergence F] [-salvage]
//	          a.ktr b.ktr
//
// Exit status: 0 on success, 1 on error, 2 on usage, 3 when -max-divergence
// is set and the measured divergence exceeds it (the CI regression gate).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	ktrace "k42trace"
	"k42trace/internal/diff"
)

type anchorList []string

func (a *anchorList) String() string     { return fmt.Sprint(*a) }
func (a *anchorList) Set(s string) error { *a = append(*a, s); return nil }

func open(path string, jobs int, salvage bool) (*ktrace.Trace, error) {
	if salvage {
		t, rep, err := ktrace.SalvageTraceFile(path, jobs)
		if err != nil {
			return nil, err
		}
		if len(rep.Skipped) > 0 {
			fmt.Fprintf(os.Stderr, "tracediff: %s: %d blocks quarantined\n", path, len(rep.Skipped))
		}
		return t, nil
	}
	t, _, st, err := ktrace.OpenTraceFileParallel(path, jobs)
	if err != nil {
		return nil, err
	}
	if st.Garbled() {
		fmt.Fprintf(os.Stderr, "tracediff: %s: warning: %d garbled words skipped\n", path, st.SkippedWords)
	}
	return t, nil
}

func main() {
	jobs := flag.Int("j", 0, "analysis workers per trace (0 = all cores)")
	top := flag.Int("top", 10, "rows per section in the text report")
	windows := flag.Int("windows", 32, "aligned-range subdivisions for divergence scoring")
	jsonOut := flag.Bool("json", false, "emit the full report as JSON instead of text")
	htmlPath := flag.String("html", "", "write the two aligned runs as a stacked interactive HTML timeline")
	maxDiv := flag.Float64("max-divergence", -1, "exit 3 if divergence exceeds this (CI gate; <0 = off)")
	salvage := flag.Bool("salvage", false, "open damaged traces forgivingly")
	var anchors anchorList
	flag.Var(&anchors, "anchor", "event name to align the runs on (repeatable; default: mask epochs, else spans)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracediff [flags] a.ktr b.ktr")
		flag.PrintDefaults()
		os.Exit(2)
	}
	pathA, pathB := flag.Arg(0), flag.Arg(1)
	ta, err := open(pathA, *jobs, *salvage)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracediff:", err)
		os.Exit(1)
	}
	tb, err := open(pathB, *jobs, *salvage)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracediff:", err)
		os.Exit(1)
	}

	rep := diff.Diff(ta, tb, diff.Options{
		Workers: *jobs,
		Windows: *windows,
		Anchors: anchors,
		LabelA:  filepath.Base(pathA),
		LabelB:  filepath.Base(pathB),
	})

	if *jsonOut {
		err = rep.WriteJSON(os.Stdout)
	} else {
		err = rep.Format(os.Stdout, *top)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracediff:", err)
		os.Exit(1)
	}

	if *htmlPath != "" {
		xa := ta.ExportTimelineRange(rep.A.Start, rep.A.End, anchors...)
		xb := tb.ExportTimelineRange(rep.B.Start, rep.B.End, anchors...)
		xa.Label = rep.A.Label
		xb.Label = rep.B.Label
		f, err := os.Create(*htmlPath)
		if err == nil {
			err = ktrace.WriteTimelineHTML(f,
				fmt.Sprintf("tracediff %s vs %s", rep.A.Label, rep.B.Label), xa, xb)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracediff:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tracediff: wrote %s\n", *htmlPath)
	}

	if *maxDiv >= 0 && rep.Divergence > *maxDiv {
		fmt.Fprintf(os.Stderr, "tracediff: divergence %.6f exceeds threshold %.6f\n",
			rep.Divergence, *maxDiv)
		os.Exit(3)
	}
}
