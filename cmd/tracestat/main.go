// Command tracestat summarizes a trace file: geometry, time span, event
// counts per major class and per CPU, event rates, anomalous blocks, and
// the per-process time overview. The quick first look before reaching for
// the specialized tools.
//
// Usage:
//
//	tracestat trace.ktr
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	ktrace "k42trace"
	"k42trace/internal/analysis"
	"k42trace/internal/stream"
)

func main() {
	jobs := flag.Int("j", 0, "decode/analysis workers (0 = all cores)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracestat trace.ktr")
		os.Exit(2)
	}
	path := flag.Arg(0)
	trace, meta, dst, err := ktrace.OpenTraceFileParallel(path, *jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d CPUs, %d-word buffers (%d KiB alignment), clock %d Hz\n",
		path, meta.CPUs, meta.BufWords, meta.BufWords*8/1024, meta.ClockHz)
	first, last := trace.Span()
	span := trace.Seconds(last) - trace.Seconds(first)
	fmt.Printf("span: %.6fs .. %.6fs (%.6fs)\n",
		trace.Seconds(first), trace.Seconds(last), span)

	byMajor := map[ktrace.Major]int{}
	byCPU := map[int]int{}
	total := 0
	for i := range trace.Events {
		e := &trace.Events[i]
		byMajor[e.Major()]++
		byCPU[e.CPU]++
		total++
	}
	rate := 0.0
	if span > 0 {
		rate = float64(total) / span
	}
	fmt.Printf("events: %d (%.0f events/sec)", total, rate)
	if dst.Garbled() {
		fmt.Printf("; %d garbled words skipped", dst.SkippedWords)
	}
	fmt.Println()

	type mc struct {
		m ktrace.Major
		n int
	}
	var majors []mc
	for m, n := range byMajor {
		majors = append(majors, mc{m, n})
	}
	sort.Slice(majors, func(i, j int) bool { return majors[i].n > majors[j].n })
	fmt.Println("\nevents by major class:")
	for _, e := range majors {
		fmt.Printf("  %-10s %8d (%5.1f%%)\n", e.m, e.n, 100*float64(e.n)/float64(total))
	}
	fmt.Println("\nevents by CPU:")
	for cpu := 0; cpu < meta.CPUs; cpu++ {
		fmt.Printf("  cpu%-3d %8d\n", cpu, byCPU[cpu])
	}

	// Anomalous blocks from the file headers.
	if f, err := os.Open(path); err == nil {
		if fi, err := f.Stat(); err == nil {
			if rd, err := stream.NewReader(f, fi.Size()); err == nil {
				if anoms, err := rd.Anomalies(); err == nil && len(anoms) > 0 {
					fmt.Printf("\nanomalous blocks (commit-count mismatches): %d\n", len(anoms))
					for _, h := range anoms {
						fmt.Printf("  cpu %d seq %d: committed %d of %d words\n",
							h.CPU, h.Seq, h.Committed, h.NWords)
					}
				}
			}
		}
		f.Close()
	}

	fmt.Println("\nper-process time overview:")
	rows := trace.OverviewParallel(*jobs)
	if len(rows) > 12 {
		rows = rows[:12]
	}
	analysis.FormatOverview(os.Stdout, rows)
}
