// Command tracebench measures the tracing fast paths on the host machine
// and prints the paper's §3.2 cost table: the cost of a disabled trace
// point (the mask check — "4 machine instructions"), the cost of logging
// events of increasing size ("91 cycles ... with 11 cycles for each
// additional 64-bit word"), and the throughput of the lockless per-CPU
// design against the locking, fixed-slot, and syscall-style baselines.
//
// Usage:
//
//	tracebench [-iters N] [-writers 1,2,4,8]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	ktrace "k42trace"
	"k42trace/internal/baseline"
	"k42trace/internal/clock"
	"k42trace/internal/event"
)

func main() {
	iters := flag.Int("iters", 2_000_000, "iterations per measurement")
	writersFlag := flag.String("writers", "1,2,4,8", "writer counts for the throughput comparison")
	flag.Parse()

	var writerCounts []int
	for _, f := range strings.Split(*writersFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "tracebench: bad writer count %q\n", f)
			os.Exit(2)
		}
		writerCounts = append(writerCounts, n)
	}

	fmt.Println("== disabled trace point (mask check) ==")
	maskCheck(*iters)

	fmt.Println("\n== enabled event cost vs payload words (paper: 91 cycles + 11/word at 1GHz) ==")
	eventCost(*iters)

	fmt.Println("\n== logging throughput: lockless per-CPU vs baselines ==")
	throughput(*iters, writerCounts)
}

func maskCheck(iters int) {
	tr := ktrace.MustNew(ktrace.Config{CPUs: 1, BufWords: 4096, NumBufs: 4})
	tr.DisableAll()
	c := tr.CPU(0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		c.Log1(ktrace.MajorTest, 1, uint64(i))
	}
	per := time.Since(start).Seconds() / float64(iters) * 1e9
	fmt.Printf("disabled Log1: %.2f ns/op\n", per)
	if tr.Stats().Events != 0 {
		fmt.Fprintln(os.Stderr, "tracebench: disabled path logged events!")
		os.Exit(1)
	}
}

func eventCost(iters int) {
	payload := make([]uint64, 16)
	var base, perWord float64
	fmt.Printf("%8s %12s\n", "words", "ns/event")
	var xs, ys []float64
	for _, n := range []int{0, 1, 2, 4, 8, 16} {
		tr := ktrace.MustNew(ktrace.Config{CPUs: 1, BufWords: 16384, NumBufs: 4})
		tr.EnableAll()
		c := tr.CPU(0)
		start := time.Now()
		for i := 0; i < iters; i++ {
			c.LogWords(ktrace.MajorTest, 1, payload[:n])
		}
		per := time.Since(start).Seconds() / float64(iters) * 1e9
		fmt.Printf("%8d %12.2f\n", n, per)
		xs = append(xs, float64(n))
		ys = append(ys, per)
	}
	base, perWord = fitLine(xs, ys)
	fmt.Printf("linear fit: %.1f ns + %.2f ns/word (paper at 1GHz: 91ns + 11ns/word)\n",
		base, perWord)
}

// fitLine returns intercept and slope of a least-squares fit.
func fitLine(xs, ys []float64) (b, m float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	m = (n*sxy - sx*sy) / (n*sxx - sx*sx)
	b = (sy - m*sx) / n
	return b, m
}

func throughput(iters int, writerCounts []int) {
	clk := clock.NewSync()
	factories := []func(cpus int) baseline.Logger{
		func(c int) baseline.Logger { return baseline.NewLockless(c, 16384, 4, clk) },
		func(c int) baseline.Logger { return baseline.NewPerCPULockLogger(c, 16384, clk) },
		func(c int) baseline.Logger { return baseline.NewLockLogger(16384, clk) },
		func(c int) baseline.Logger { return baseline.NewFixedLogger(c, 4096, clk) },
		func(c int) baseline.Logger { return baseline.NewSyscallLogger(16384, clk) },
	}
	fmt.Printf("%-18s", "writers")
	for _, w := range writerCounts {
		fmt.Printf(" %14d", w)
	}
	fmt.Println("  (Mevents/sec)")
	for _, mkLogger := range factories {
		name := func() string {
			l := mkLogger(1)
			defer l.Close()
			return l.Name()
		}()
		fmt.Printf("%-18s", name)
		for _, writers := range writerCounts {
			per := iters / writers / 4
			l := mkLogger(writers)
			var wg sync.WaitGroup
			start := time.Now()
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						l.Log1(w, event.MajorTest, 1, uint64(i))
					}
				}(w)
			}
			wg.Wait()
			dur := time.Since(start).Seconds()
			rate := float64(per*writers) / dur / 1e6
			l.Close()
			fmt.Printf(" %14.2f", rate)
		}
		fmt.Println()
	}
}
