// Command kmon is the paper's Figure 4 graphical viewing tool, rendered
// for terminals and SVG: a per-CPU timeline giving "a visual sense of what
// is occurring in the system and how active the system is", with selected
// events marked along it. It also prints the click-to-list view: the
// events around a chosen instant (Figure 5's listing scoped to a window).
//
// Usage:
//
//	kmon [-width N] [-mark EVENT_NAME]... [-svg out.svg] [-html out.html] [-at seconds -around ms] trace.ktr
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	ktrace "k42trace"
)

type markList []string

func (m *markList) String() string     { return fmt.Sprint(*m) }
func (m *markList) Set(s string) error { *m = append(*m, s); return nil }

func main() {
	width := flag.Int("width", 100, "timeline width in columns")
	svgPath := flag.String("svg", "", "also write an SVG rendering to this path")
	htmlPath := flag.String("html", "", "also write a self-contained interactive HTML timeline to this path")
	zoomFrom := flag.Float64("from", -1, "zoom: window start, seconds")
	zoomTo := flag.Float64("to", -1, "zoom: window end, seconds")
	at := flag.Float64("at", -1, "list events around this time (seconds), like clicking the timeline")
	around := flag.Float64("around", 2.0, "window size for -at, milliseconds")
	jobs := flag.Int("j", 0, "decode workers (0 = all cores)")
	var marks markList
	flag.Var(&marks, "mark", "event name to mark on the timeline (repeatable)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: kmon [flags] trace.ktr")
		flag.PrintDefaults()
		os.Exit(2)
	}
	trace, meta, st, err := ktrace.OpenTraceFileParallel(flag.Arg(0), *jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kmon:", err)
		os.Exit(1)
	}
	if st.Garbled() {
		fmt.Fprintf(os.Stderr, "kmon: warning: %d garbled words skipped\n", st.SkippedWords)
	}
	var tl *ktrace.Timeline
	if *zoomFrom >= 0 && *zoomTo > *zoomFrom {
		hz := float64(meta.ClockHz)
		tl = trace.TimelineRange(uint64(*zoomFrom*hz), uint64(*zoomTo*hz), *width, marks...)
	} else {
		tl = trace.Timeline(*width, marks...)
	}
	fmt.Print(tl.ASCII())
	util := tl.Utilization()
	for cpu, u := range util {
		fmt.Printf("cpu%-3d utilization %5.1f%%\n", cpu, u*100)
	}
	if *svgPath != "" {
		if err := os.WriteFile(*svgPath, []byte(tl.SVG()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "kmon:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *svgPath)
	}
	if *htmlPath != "" {
		var x *ktrace.TimelineExport
		if *zoomFrom >= 0 && *zoomTo > *zoomFrom {
			hz := float64(meta.ClockHz)
			x = trace.ExportTimelineRange(uint64(*zoomFrom*hz), uint64(*zoomTo*hz), marks...)
		} else {
			x = trace.ExportTimeline(marks...)
		}
		x.Label = filepath.Base(flag.Arg(0))
		f, err := os.Create(*htmlPath)
		if err == nil {
			err = ktrace.WriteTimelineHTML(f, "kmon "+x.Label, x)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "kmon:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *htmlPath)
	}
	if *at >= 0 {
		hz := float64(meta.ClockHz)
		half := *around / 2 * hz / 1000
		center := *at * hz
		from := uint64(0)
		if center > half {
			from = uint64(center - half)
		}
		fmt.Printf("\nevents around %.6fs:\n", *at)
		trace.List(os.Stdout, ktrace.ListOptions{
			From: from, To: uint64(center + half), Limit: 50,
		})
	}
}
