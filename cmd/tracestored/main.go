// Command tracestored is the multi-tenant trace store daemon: it owns a
// directory tree of time-sharded trace segments, ingests .ktr spills
// (HTTP upload, a watched spool directory, or a relay-wire listener),
// rewrites them through salvage into clean time-bounded segments with
// persisted indexes, and answers time/predicate/aggregation queries from
// index-pruned parallel scans. Retention and compaction run on timers.
//
// HTTP surface (on -http):
//
//	GET  /healthz                 liveness + config echo
//	GET  /metrics                 Prometheus text exposition
//	GET  /tenants                 per-tenant catalog summary
//	POST /ingest?tenant=T         upload one .ktr spill (body = file)
//	GET  /query?tenant=T&from=&to=&major=&minor=&pid=&agg=&limit=&cursor=
//	POST /admin/compact[?tenant=T]
//	POST /admin/gc[?tenant=T]
//
// The watch directory is polled: a file at <watch>/<tenant>/x.ktr is
// ingested into tenant's namespace and renamed to x.ktr.stored (or
// .failed). The relay listener accepts tracerelay/shmlog senders; each
// connection becomes one upload under -relay-tenant.
//
// Usage:
//
//	tracestored -root /var/lib/tracestore -http 127.0.0.1:7045
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"k42trace/internal/relay"
	"k42trace/internal/store"
	"k42trace/internal/stream"
)

func main() {
	root := flag.String("root", "", "store root directory (required)")
	httpAddr := flag.String("http", "127.0.0.1:7045", "HTTP listen address")
	watch := flag.String("watch", "", "spool directory to poll for <tenant>/*.ktr uploads")
	watchEvery := flag.Duration("watch-every", time.Second, "spool poll period")
	relayAddr := flag.String("relay", "", "relay-wire listen address (tracerelay/shmlog senders)")
	relayTenant := flag.String("relay-tenant", "default", "tenant namespace for relay uploads")
	segSpan := flag.Uint64("seg-span", 0, "segment time width in trace ticks (0 = one segment per upload)")
	maxSegBytes := flag.Int64("max-seg-bytes", 64<<20, "compaction output size cap")
	retainAge := flag.Duration("retain-age", 0, "expire segments older than this (0 = keep)")
	retainBytes := flag.Int64("retain-bytes", 0, "per-tenant byte budget (0 = unlimited)")
	compactEvery := flag.Duration("compact-every", 0, "compaction period (0 = only on /admin/compact)")
	gcEvery := flag.Duration("gc-every", 0, "retention period (0 = only on /admin/gc)")
	jobs := flag.Int("j", 0, "decode/scan workers (0 = all cores)")
	cacheBytes := flag.Int64("cache-bytes", 256<<20, "segment query result cache budget (0 = disabled)")
	queryConc := flag.Int("query-concurrency", 0, "global concurrent query limit (0 = admission control off)")
	tenantQueries := flag.Int("tenant-queries", 0, "per-tenant concurrent query limit (0 = query-concurrency)")
	tenantQueue := flag.Int("tenant-queue", 8, "per-tenant query wait-queue depth; overflow is refused with 429")
	flag.Parse()
	if *root == "" {
		fmt.Fprintln(os.Stderr, "usage: tracestored -root DIR [-http ADDR] [-watch DIR] [-relay ADDR]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *queryConc == 0 && *tenantQueries > 0 {
		// A per-tenant cap alone still needs a pool to draw from: size the
		// global pool to the scan parallelism the box can actually deliver.
		*queryConc = 2 * runtime.GOMAXPROCS(0)
		if *queryConc < *tenantQueries {
			*queryConc = *tenantQueries
		}
	}

	s, err := store.Open(store.Options{
		Root:            *root,
		SegmentSpan:     *segSpan,
		MaxSegmentBytes: *maxSegBytes,
		RetainAge:       *retainAge,
		RetainBytes:     *retainBytes,
		Workers:         *jobs,
		CacheBytes:      *cacheBytes,
		Admission: store.AdmissionOptions{
			MaxConcurrent: *queryConc,
			TenantMax:     *tenantQueries,
			TenantQueue:   *tenantQueue,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestored:", err)
		os.Exit(1)
	}

	stop := make(chan struct{})

	var relaySrv *relay.Server
	if *relayAddr != "" {
		relaySrv, err = relay.Listen(*relayAddr, relayIngest(s, *relayTenant))
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracestored:", err)
			os.Exit(1)
		}
		fmt.Printf("tracestored: relay ingest on %s (tenant %s)\n", relaySrv.Addr(), *relayTenant)
	}
	if *watch != "" {
		go watchLoop(s, *watch, *watchEvery, stop)
		fmt.Printf("tracestored: watching %s\n", *watch)
	}
	if *compactEvery > 0 {
		go periodic(*compactEvery, stop, func() {
			for _, r := range s.CompactAll() {
				fmt.Printf("tracestored: compacted %s: %d -> %d segments (%d events)\n",
					r.Tenant, r.In, r.Out, r.Events)
			}
		})
	}
	if *gcEvery > 0 {
		go periodic(*gcEvery, stop, func() {
			for _, r := range s.GCAll() {
				fmt.Printf("tracestored: gc %s: %d segments, %d bytes\n", r.Tenant, r.Segments, r.Bytes)
			}
		})
	}

	web := &http.Server{Addr: *httpAddr, Handler: s.Handler()}
	webErr := make(chan error, 1)
	go func() { webErr <- web.ListenAndServe() }()
	fmt.Printf("tracestored: root %s, http on %s\n", *root, *httpAddr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case sg := <-sig:
		fmt.Printf("tracestored: %v, shutting down\n", sg)
	case err := <-webErr:
		fmt.Fprintln(os.Stderr, "tracestored: http:", err)
	}
	close(stop)
	if relaySrv != nil {
		relaySrv.Close() // waits for in-flight uploads to finish ingesting
	}
	web.Close()
	s.Close()
	for _, t := range s.Tenants() {
		fmt.Printf("tracestored: tenant %s: %d segments, %d events, %d bytes\n",
			t.Name, t.Segments, t.Events, t.Bytes)
	}
}

// relayIngest spools each incoming block stream to a temp .ktr and
// ingests it as one upload when the sender finishes.
func relayIngest(s *store.Store, tenant string) relay.Handler {
	return func(remote net.Addr, bs *stream.BlockStream) error {
		tmp, err := os.CreateTemp("", "tracestored-relay-*.ktr")
		if err != nil {
			return err
		}
		defer os.Remove(tmp.Name())
		defer tmp.Close()
		wr, err := stream.NewWriter(tmp, bs.Meta())
		if err != nil {
			return err
		}
		for {
			h, words, err := bs.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			if err := wr.WriteBlock(h, words); err != nil {
				return err
			}
		}
		res, err := s.IngestFile(tenant, tmp.Name())
		if err != nil {
			return err
		}
		fmt.Printf("tracestored: relay upload %d from %v: %d events in %d segments\n",
			res.Upload, remote, res.Events, len(res.Segments))
		return nil
	}
}

// watchLoop polls the spool tree: <watch>/<tenant>/*.ktr files are
// ingested and renamed aside so a crash never double-ingests silently.
func watchLoop(s *store.Store, dir string, every time.Duration, stop <-chan struct{}) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		tenants, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, td := range tenants {
			if !td.IsDir() || !store.ValidTenant(td.Name()) {
				continue
			}
			files, err := os.ReadDir(filepath.Join(dir, td.Name()))
			if err != nil {
				continue
			}
			for _, f := range files {
				if f.IsDir() || !strings.HasSuffix(f.Name(), ".ktr") {
					continue
				}
				path := filepath.Join(dir, td.Name(), f.Name())
				res, err := s.IngestFile(td.Name(), path)
				if err != nil {
					fmt.Fprintf(os.Stderr, "tracestored: %s: %v\n", path, err)
					os.Rename(path, path+".failed")
					continue
				}
				os.Rename(path, path+".stored")
				fmt.Printf("tracestored: %s: upload %d, %d events in %d segments\n",
					path, res.Upload, res.Events, len(res.Segments))
			}
		}
	}
}

func periodic(every time.Duration, stop <-chan struct{}, fn func()) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			fn()
		}
	}
}
