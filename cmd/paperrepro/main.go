// Command paperrepro regenerates the paper's entire evaluation in one run
// and prints a paper-vs-measured report: the §3.2 cost table (C1/C2), the
// Figure 3 SDET sweep, the tracing-overhead claim (C3), the lockless-vs-
// locked multiprocessor comparison (C4), the filler/boundary statistics
// (C6), random access (C7), and the headline rows of Figures 6 and 7.
// Shapes are checked automatically; exact numbers go to EXPERIMENTS.md.
//
// Usage:
//
//	paperrepro [-quick]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"time"

	ktrace "k42trace"
	"k42trace/internal/sdet"
	"k42trace/internal/stream"
)

var failures int

func check(ok bool, format string, args ...interface{}) {
	status := "ok  "
	if !ok {
		status = "FAIL"
		failures++
	}
	fmt.Printf("  [%s] %s\n", status, fmt.Sprintf(format, args...))
}

func main() {
	quick := flag.Bool("quick", false, "smaller iteration counts")
	flag.Parse()
	iters := 2_000_000
	if *quick {
		iters = 200_000
	}

	fmt.Println("== C1/C2: §3.2 cost table (paper: mask check 4 instructions; 91 cycles + 11/word) ==")
	costTable(iters)

	fmt.Println("\n== Figure 3: SDET throughput vs processors (tracing compiled in, masked) ==")
	figure3()

	fmt.Println("\n== C3: tracing overhead on SDET (paper: <1% masked) ==")
	overhead()

	fmt.Println("\n== C4: lockless vs lock-serialized tracing, 16 virtual CPUs (paper/LTT: ~10x) ==")
	lockedVsLockless()

	fmt.Println("\n== C6: boundary fits and filler waste (paper: 30-40% exact, very little waste) ==")
	filler()

	fmt.Println("\n== C7: random access into a large trace ==")
	randomAccess()

	fmt.Println("\n== Figures 6/7: profile and lock contention on the coarse kernel ==")
	figures67()

	if failures > 0 {
		fmt.Printf("\n%d checks FAILED\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nall shape checks passed")
}

func costTable(iters int) {
	tr := ktrace.MustNew(ktrace.Config{CPUs: 1, BufWords: 16384, NumBufs: 4})
	tr.DisableAll()
	c := tr.CPU(0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		c.Log1(ktrace.MajorTest, 1, uint64(i))
	}
	disabled := time.Since(start).Seconds() / float64(iters) * 1e9
	tr.EnableAll()
	measure := func(n int) float64 {
		payload := make([]uint64, n)
		start := time.Now()
		for i := 0; i < iters; i++ {
			c.LogWords(ktrace.MajorTest, 1, payload)
		}
		return time.Since(start).Seconds() / float64(iters) * 1e9
	}
	e1 := measure(1)
	e16 := measure(16)
	fmt.Printf("  disabled trace point: %6.2f ns   1-word event: %6.2f ns   16-word: %6.2f ns\n",
		disabled, e1, e16)
	check(disabled < 20, "disabled path is near-free (%.2fns)", disabled)
	check(e1 < 1000, "enabled 1-word event in the ~100ns regime (%.2fns)", e1)
	check(e16 < e1*3, "per-word slope small (16 words only %.1fx the 1-word cost)", e16/e1)
}

func figure3() {
	p := sdet.Params{ScriptsPerCPU: 4, CommandsPerScript: 6, Seed: 42}
	pts, err := sdet.Sweep([]int{1, 4, 16, 24}, sdet.TraceMasked, p)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(indent(sdet.FormatTable(pts)))
	get := func(cpus int, tuned bool) float64 {
		for _, pt := range pts {
			if pt.CPUs == cpus && pt.Tuned == tuned {
				return pt.Throughput
			}
		}
		return 0
	}
	tuned24 := get(24, true) / get(1, true)
	coarse24 := get(24, false) / get(1, false)
	check(tuned24 > 18, "tuned kernel scales near-linearly (%.1fx at 24 cpus)", tuned24)
	check(coarse24 < 0.6*tuned24, "coarse kernel flattens (%.1fx at 24 cpus)", coarse24)
}

func overhead() {
	p := sdet.Params{ScriptsPerCPU: 3, CommandsPerScript: 5, Seed: 11}
	runMode := func(m sdet.TraceMode) sdet.Point {
		pt, err := sdet.Run(sdet.Config{CPUs: 4, Tuned: true, Trace: m, Params: p}, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return pt
	}
	out := runMode(sdet.TraceCompiledOut)
	masked := runMode(sdet.TraceMasked)
	on := runMode(sdet.TraceOn)
	mo := float64(masked.MakespanNs)/float64(out.MakespanNs) - 1
	oo := float64(on.MakespanNs)/float64(out.MakespanNs) - 1
	fmt.Printf("  masked: +%.3f%%   fully enabled: +%.2f%% (%d events)\n", mo*100, oo*100, on.Events)
	check(mo < 0.01, "masked overhead under 1%% (%.3f%%)", mo*100)
	check(oo > 0 && oo < 0.15, "full tracing is low-impact (%.2f%%)", oo*100)
}

func lockedVsLockless() {
	p := sdet.Params{ScriptsPerCPU: 3, CommandsPerScript: 5, Seed: 11}
	run := func(locked bool) sdet.Point {
		pt, err := sdet.Run(sdet.Config{CPUs: 16, Tuned: true, Trace: sdet.TraceOn,
			Params: p, LockedTrace: locked}, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return pt
	}
	ll := run(false)
	lk := run(true)
	ratio := float64(lk.MakespanNs) / float64(ll.MakespanNs)
	fmt.Printf("  lockless per-CPU: %.0f scripts/hour   locked global buffer: %.0f   ratio %.1fx\n",
		ll.Throughput, lk.Throughput, ratio)
	check(ratio > 5, "order-of-magnitude-class separation (%.1fx)", ratio)
}

func filler() {
	tr := ktrace.MustNew(ktrace.Config{CPUs: 1, BufWords: 16384, NumBufs: 4})
	tr.EnableAll()
	c := tr.CPU(0)
	payload := make([]uint64, 4)
	rng := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 2_000_000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		c.LogWords(ktrace.MajorTest, 1, payload[:(rng>>33)%5])
	}
	st := tr.Stats()
	exact := 100 * float64(st.ExactFit) / float64(st.Anchors)
	waste := 100 * float64(st.FillerWords) / float64(st.Words+st.FillerWords)
	fmt.Printf("  exact boundary fits: %.1f%%   filler waste: %.4f%% of logged words\n", exact, waste)
	check(exact > 25 && exact < 45, "exact fits in the paper's 30-40%% band (%.1f%%)", exact)
	check(waste < 0.1, "filler waste negligible (%.4f%%)", waste)
}

func randomAccess() {
	tr := ktrace.MustNew(ktrace.Config{CPUs: 1, BufWords: 1024, NumBufs: 4,
		Mode: ktrace.Stream, Clock: ktrace.NewManualClock(1)})
	tr.EnableAll()
	var buf bytes.Buffer
	wait := ktrace.CaptureAsync(tr, &buf)
	c := tr.CPU(0)
	for i := 0; i < 300_000; i++ {
		c.Log2(ktrace.MajorTest, 1, uint64(i), uint64(i))
	}
	tr.Stop()
	if _, err := wait(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rd, err := stream.NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	mid := rd.NumBlocks() / 2
	t0 := time.Now()
	rd.Events(mid)
	seek := time.Since(t0)
	t0 = time.Now()
	for k := 0; k <= mid; k++ {
		rd.Events(k)
	}
	scan := time.Since(t0)
	fmt.Printf("  %d blocks; middle block by seek: %v, by scan: %v (%.0fx)\n",
		rd.NumBlocks(), seek, scan, float64(scan)/float64(seek))
	check(scan > 20*seek, "seek beats scan by a wide margin (%.0fx)", float64(scan)/float64(seek))
}

func figures67() {
	var buf bytes.Buffer
	p := sdet.Params{ScriptsPerCPU: 3, CommandsPerScript: 4, Seed: 9}
	if _, err := sdet.Run(sdet.Config{CPUs: 16, Tuned: false, Trace: sdet.TraceOn,
		Params: p, Sample: 50_000}, &buf); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rd, err := stream.NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	evs, _, err := rd.ReadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	trace := ktrace.BuildTrace(evs, rd.Meta().ClockHz, ktrace.DefaultRegistry())
	prof := trace.Profile(^uint64(0))
	fmt.Printf("  Figure 6 top symbol: %s (%d samples)\n", prof.Top(), prof.Total)
	check(prof.Top() == "FairBLock::_acquire()",
		"coarse profile led by lock spinning, as in Figure 6")
	rep := trace.LockStat()
	if len(rep.Rows) > 0 {
		frames := trace.ChainFrames(rep.Rows[0].ChainID)
		fmt.Printf("  Figure 7 top lock: %.6fs wait, %d contentions, chain %s\n",
			trace.Seconds(rep.Rows[0].TotalWaitNs), rep.Rows[0].Count, frames[0])
	}
	check(len(rep.Rows) > 0, "coarse run shows contended locks for the Figure 7 table")
}

func indent(s string) string {
	out := "  "
	for _, r := range s {
		out += string(r)
		if r == '\n' {
			out += "  "
		}
	}
	return out + "\n"
}
