// Command tracecolld is the long-running collector daemon: many traced
// systems stream their sealed buffers to it concurrently (tracerelay
// -send, ideally with -reconnect), and it runs incremental sliding-window
// analysis over the merged stream while optionally spilling every raw
// block to a trace file. This is the paper's live-monitoring claim at
// fleet scale: "this event log may be examined while the system is
// running ... or streamed over the network", with bounded collector
// memory no matter how long the session runs.
//
// HTTP surface (on -http):
//
//	/healthz        liveness
//	/metrics        Prometheus text exposition
//	/live/overview  cumulative per-process summary + producer states
//	/live/windows   per-window analysis snapshots
//	/live/mask      GET mask control-plane state; POST mask=<spec>
//	                [producer=<id>] to retune producers at runtime
//
// On SIGINT/SIGTERM the daemon force-closes producer connections
// (reliable senders redial on their own once a collector is back),
// drains every queued block into the analysis and the spill, and exits;
// the spill is a well-formed .ktr openable by every offline tool.
//
// Usage:
//
//	tracecolld -listen 127.0.0.1:7042 -http 127.0.0.1:7043 -spill drained.ktr
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"k42trace/internal/event"
	"k42trace/internal/fed"
	"k42trace/internal/live"
	"k42trace/internal/relay"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7042", "producer listen address")
	httpAddr := flag.String("http", "127.0.0.1:7043", "metrics/snapshot HTTP address")
	window := flag.Duration("window", 250*time.Millisecond, "analysis window width (trace time)")
	maxWindows := flag.Int("max-windows", 32, "live windows kept before eviction")
	queue := flag.Int("queue", 64, "per-producer ingest queue depth, blocks")
	slow := flag.Duration("slow", 5*time.Second, "how long a producer may wait on a full queue before disconnection")
	cpuSlots := flag.Int("cpu-slots", 256, "total remapped CPU slots across all producers")
	spillPath := flag.String("spill", "", "spill every accepted block to this trace file")
	storeURL := flag.String("store", "", "tracestored base URL to upload the final spill to (e.g. http://127.0.0.1:7045)")
	storeTenant := flag.String("store-tenant", "default", "tenant namespace for the -store upload")
	watch := flag.String("watch", "", "comma-separated pids to keep per-window time breakdowns for")
	maskSpec := flag.String("mask", "", `initial trace mask pushed to every producer that connects ("all", a hex literal, or major names like "ctrl,sched,lock")`)
	up := flag.String("up", "", "federate: relay accepted blocks up to this traceaggd uplink address")
	aggHTTP := flag.String("agg-http", "", "federate: heartbeat to this traceaggd HTTP base URL (e.g. http://127.0.0.1:7053)")
	name := flag.String("name", "", "federate: stable shard name (default: the -listen address)")
	advertise := flag.String("advertise", "", "federate: producer-facing address announced on the ring (default: the -listen address)")
	upForward := flag.String("up-forward", "all", "federate: uplink relay policy, all or ctrl")
	heartbeat := flag.Duration("heartbeat", time.Second, "federate: heartbeat period")
	flag.Parse()

	opt := live.Options{
		Window:         *window,
		MaxWindows:     *maxWindows,
		QueueBlocks:    *queue,
		EnqueueTimeout: *slow,
		CPUSlots:       *cpuSlots,
	}
	if *watch != "" {
		for _, s := range strings.Split(*watch, ",") {
			pid, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tracecolld: bad -watch pid %q: %v\n", s, err)
				os.Exit(2)
			}
			opt.WatchPids = append(opt.WatchPids, pid)
		}
	}
	var spill *os.File
	if *spillPath != "" {
		f, err := os.Create(*spillPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracecolld:", err)
			os.Exit(1)
		}
		spill = f
		opt.Spill = f
	}

	// Federated mode wraps the collector in a shard: an uplink relays
	// accepted blocks to the aggregator (whose mask frames fan down to
	// this shard's producers), and heartbeats keep it on the ring.
	var shard *fed.Shard
	var c *live.Collector
	if *up != "" || *aggHTTP != "" {
		if *name == "" {
			*name = *listen
		}
		if *advertise == "" {
			*advertise = *listen
		}
		s, err := fed.NewShard(fed.ShardOptions{
			Name:           *name,
			Advertise:      *advertise,
			HTTP:           *httpAddr,
			AggAddr:        *up,
			AggHTTP:        *aggHTTP,
			HeartbeatEvery: *heartbeat,
			Forward:        fed.ForwardMode(*upForward),
			Live:           opt,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracecolld:", err)
			os.Exit(2)
		}
		shard = s
		c = s.Collector()
	} else {
		c = live.NewCollector(opt)
	}
	if *maskSpec != "" {
		m, err := event.ParseMask(*maskSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecolld: bad -mask: %v\n", err)
			os.Exit(2)
		}
		c.SetMask(m, 0)
		fmt.Printf("tracecolld: desired mask %s (%s)\n",
			event.MaskString(m|event.MajorControl.Bit()),
			strings.Join(event.MaskMajors(m|event.MajorControl.Bit()), ","))
	}
	srv, err := relay.ListenConns(*listen, c.Handler())
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecolld:", err)
		os.Exit(1)
	}
	handler := c.Mux()
	if shard != nil {
		handler = shard.Mux()
	}
	web := &http.Server{Addr: *httpAddr, Handler: handler}
	webErr := make(chan error, 1)
	go func() { webErr <- web.ListenAndServe() }()
	fmt.Printf("tracecolld: producers on %s, http on %s\n", srv.Addr(), *httpAddr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("tracecolld: %v, draining\n", s)
	case err := <-webErr:
		fmt.Fprintln(os.Stderr, "tracecolld: http:", err)
	}

	// Force-close producer connections (their read loops end, queues
	// close), then wait for every queued block to reach analysis + spill.
	srv.CloseNow()
	if shard != nil {
		// Shard drain also flushes the uplink and sends the final Leaving
		// heartbeat, whose overview is this shard's exact total.
		if err := shard.Drain(); err != nil {
			fmt.Fprintln(os.Stderr, "tracecolld: spill:", err)
		}
	} else if err := c.Drain(); err != nil {
		fmt.Fprintln(os.Stderr, "tracecolld: spill:", err)
	}
	if spill != nil {
		if err := spill.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "tracecolld: spill:", err)
		}
	}
	web.Close()

	snap := c.Snapshot()
	var blocks, events, garbled, stuck uint64
	for _, p := range snap.Producers {
		blocks += p.Blocks
		events += p.Events
		garbled += p.Garbled
		stuck += p.StuckSeals
	}
	fmt.Printf("tracecolld: %d producers, %d blocks, %d events (%d garbled, %d stuck-seal blocks)\n",
		len(snap.Producers), blocks, events, garbled, stuck)
	if *spillPath != "" {
		fmt.Printf("tracecolld: spilled to %s\n", *spillPath)
		if *storeURL != "" {
			if err := uploadSpill(*storeURL, *storeTenant, *spillPath); err != nil {
				fmt.Fprintln(os.Stderr, "tracecolld: store upload:", err)
			} else {
				fmt.Printf("tracecolld: spill uploaded to %s (tenant %s)\n", *storeURL, *storeTenant)
			}
		}
	}
	for reason, n := range snap.Disconnects {
		fmt.Printf("tracecolld: disconnects %s: %d\n", reason, n)
	}
	if shard != nil {
		st := shard.Stats()
		if st.Uplink != nil {
			fmt.Printf("tracecolld: uplink %d blocks, %d dials, %d retries, %d dropped (full %d, gave up %d), %d control frames\n",
				st.Uplink.Blocks, st.Uplink.Dials, st.Uplink.Retries,
				st.Uplink.DroppedFull+st.Uplink.DroppedGaveUp,
				st.Uplink.DroppedFull, st.Uplink.DroppedGaveUp, st.Uplink.ControlFrames)
		}
		fmt.Printf("tracecolld: heartbeats %d ok, %d failed; %d mask frames fanned down\n",
			st.HeartbeatsOK, st.HeartbeatsErr, st.CtrlMaskFrames)
	}
}

// uploadSpill hands the drained spill to a tracestored daemon: the
// collector keeps no long-term state, the store owns retention and
// queries from here on.
func uploadSpill(base, tenant, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	url := strings.TrimRight(base, "/") + "/ingest?tenant=" + tenant
	resp, err := http.Post(url, "application/octet-stream", f)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return nil
}
