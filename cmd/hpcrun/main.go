// Command hpcrun executes the bulk-synchronous scientific workload (one
// rank per processor, compute + halo exchange + barrier per iteration) on
// the simulated machine, reporting parallel efficiency and optionally
// capturing the trace — the "large scientific applications running one
// thread per processor" scenario of §3.1, whose single-writer-per-buffer
// property makes garbled buffers impossible.
//
// Usage:
//
//	hpcrun -ranks 8 -iters 50 -imbalance 20 [-o trace.ktr]
package main

import (
	"flag"
	"fmt"
	"os"

	ktrace "k42trace"
	"k42trace/internal/hpc"
	"k42trace/internal/ksim"
	"k42trace/internal/stream"
)

func main() {
	ranks := flag.Int("ranks", 8, "ranks (one per simulated CPU)")
	iters := flag.Int("iters", 30, "iterations")
	compute := flag.Uint64("compute", 50_000, "per-iteration compute per rank, virtual ns")
	imbalance := flag.Int("imbalance", 10, "compute skew of the slowest rank, percent")
	exchange := flag.Uint64("exchange", 2048, "halo exchange bytes per iteration (0 = none)")
	out := flag.String("o", "", "capture the trace to this file")
	flag.Parse()

	p := hpc.Params{
		Ranks:         *ranks,
		Iterations:    *iters,
		ComputeNs:     *compute,
		ImbalancePct:  *imbalance,
		ExchangeBytes: *exchange,
		TouchPages:    4,
	}
	cfg := ksim.Config{CPUs: *ranks, Tuned: true}
	var (
		res hpc.Result
		err error
	)
	if *out == "" {
		res, _, err = hpc.Run(cfg, p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hpcrun:", err)
			os.Exit(1)
		}
	} else {
		k, tr, kerr := ksim.NewTracedKernel(cfg,
			ktrace.Config{BufWords: 8192, NumBufs: 8, Mode: ktrace.Stream})
		if kerr != nil {
			fmt.Fprintln(os.Stderr, "hpcrun:", kerr)
			os.Exit(1)
		}
		tr.EnableAll()
		f, ferr := os.Create(*out)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "hpcrun:", ferr)
			os.Exit(1)
		}
		wait := stream.CaptureAsync(tr, f)
		scripts := hpc.Build(k, p)
		run, rerr := k.Run(scripts)
		if rerr != nil {
			fmt.Fprintln(os.Stderr, "hpcrun:", rerr)
			os.Exit(1)
		}
		tr.Stop()
		cst, werr := wait()
		f.Close()
		if werr != nil {
			fmt.Fprintln(os.Stderr, "hpcrun:", werr)
			os.Exit(1)
		}
		var busy uint64
		for _, b := range run.BusyNs {
			busy += b
		}
		res = hpc.Result{RunResult: run,
			ParallelEfficiency: float64(busy) / float64(run.MakespanNs) / float64(*ranks)}
		fmt.Printf("trace: %s (%d blocks, %d anomalies — single-writer runs must show 0)\n",
			*out, cst.Blocks, cst.Anomalies)
	}
	fmt.Printf("ranks=%d iterations=%d makespan=%.3fms efficiency=%.1f%% blocked=%d events=%d\n",
		*ranks, *iters, float64(res.MakespanNs)/1e6,
		res.ParallelEfficiency*100, res.Blocked, res.TraceEvents)
	for cpu, b := range res.BusyNs {
		fmt.Printf("  rank%-3d busy %8.3fms idle %8.3fms\n",
			cpu, float64(b)/1e6, float64(res.IdleNs[cpu])/1e6)
	}
}
