// Command ktraced is the shared-memory trace daemon — the reproduction of
// K42's user-level trace daemon, "responsible for writing the data to
// disk", for segments that real OS processes map and log into with no
// system calls. It creates a segment file (put it on tmpfs), publishes it
// for clients (any process using ktrace.Attach or the shmlog driver),
// continuously drains sealed buffers, writes off clients that die without
// detaching — including SIGKILL mid-event, which surfaces as a
// commit-count anomaly on the affected buffer — and on SIGINT/SIGTERM
// seals what remains and exits.
//
// Drained buffers go to a trace file (-spill) or over the network to a
// collector like tracecolld (-relay, with reliable reconnecting), using
// the same block format as in-process tracing, so every offline and live
// tool works unchanged on cross-process traces.
//
// With -admin the daemon also serves a small HTTP control plane for
// per-client mask management, so an operator can narrow one misbehaving
// client to (say) nothing but control events without disturbing the rest:
//
//	GET  /masks                        current global and per-client masks
//	POST /mask?mask=SPEC               set the global mask
//	POST /mask?client=SLOT&mask=SPEC   set one client slot's override
//
// SPEC is the same syntax as -mask ("all", a hex literal, or major names).
//
// Usage:
//
//	ktraced -seg /dev/shm/k42.seg -spill out.ktr
//	ktraced -seg /dev/shm/k42.seg -cpus 4 -relay 127.0.0.1:7042 -admin 127.0.0.1:7043
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"

	ktrace "k42trace"
	"k42trace/internal/event"
	"k42trace/internal/relay"
	"k42trace/internal/shm"
	"k42trace/internal/stream"
)

// serveAdmin starts the mask control plane on addr and returns the bound
// address (for tests using port 0).
func serveAdmin(ag *shm.Agent, addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /masks", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "mask %#016x (%s)\n", ag.Mask(), ktrace.MaskString(ag.Mask()))
		info, err := shm.Inspect(ag.Path())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		for _, c := range info.Clients {
			fmt.Fprintf(w, "slot %d pid %d override %#016x eff %#016x\n",
				c.Slot, c.Pid, c.MaskOverride, c.MaskEff)
		}
	})
	mux.HandleFunc("POST /mask", func(w http.ResponseWriter, r *http.Request) {
		mask, err := event.ParseMask(r.FormValue("mask"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if slotStr := r.FormValue("client"); slotStr != "" {
			slot, err := strconv.Atoi(slotStr)
			if err != nil {
				http.Error(w, "bad client slot: "+err.Error(), http.StatusBadRequest)
				return
			}
			if err := ag.SetClientMask(slot, mask); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			_, eff := ag.ClientMask(slot)
			fmt.Fprintf(w, "slot %d override %#016x eff %#016x\n", slot, mask, eff)
			return
		}
		ag.SetMask(mask)
		fmt.Fprintf(w, "mask %#016x (%s)\n", mask, ktrace.MaskString(mask))
	})
	go http.Serve(ln, mux)
	return ln.Addr().String(), nil
}

func main() {
	seg := flag.String("seg", "", "segment file to create and own (tmpfs recommended)")
	cpus := flag.Int("cpus", 2, "processor slots")
	bufWords := flag.Int("bufwords", 0, "buffer size in words (power of two; 0 = default)")
	numBufs := flag.Int("numbufs", 0, "buffers per CPU (power of two; 0 = default)")
	maxClients := flag.Int("max-clients", 64, "client table capacity")
	spill := flag.String("spill", "", "write drained buffers to this trace file")
	relayAddr := flag.String("relay", "", "stream drained buffers to this collector address instead")
	maskSpec := flag.String("mask", "all", `trace mask ("all", hex literal, or major names like "sched,lock")`)
	admin := flag.String("admin", "", "serve the mask control plane on this HTTP address (e.g. 127.0.0.1:7043)")
	rm := flag.Bool("rm", false, "remove the segment file on exit")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "ktraced:", err)
		os.Exit(1)
	}
	if *seg == "" {
		fmt.Fprintln(os.Stderr, "ktraced: -seg is required")
		os.Exit(2)
	}
	if (*spill == "") == (*relayAddr == "") {
		fmt.Fprintln(os.Stderr, "ktraced: exactly one of -spill or -relay is required")
		os.Exit(2)
	}
	mask, err := event.ParseMask(*maskSpec)
	if err != nil {
		fail(err)
	}

	ag, err := shm.Create(*seg, shm.Geometry{
		CPUs: *cpus, BufWords: *bufWords, NumBufs: *numBufs, MaxClients: *maxClients,
	})
	if err != nil {
		fail(err)
	}
	ag.SetMask(mask)
	g := ag.Geometry()
	fmt.Printf("ktraced: segment %s ready: %d cpu x %d bufs x %d words, %d client slots, mask %s\n",
		*seg, g.CPUs, g.NumBufs, g.BufWords, g.MaxClients, ktrace.MaskString(mask))
	if *admin != "" {
		addr, err := serveAdmin(ag, *admin)
		if err != nil {
			fail(err)
		}
		fmt.Printf("ktraced: admin on http://%s\n", addr)
	}

	// The drain runs until Stop closes the Sealed channel; the signal
	// handler is what triggers that.
	type result struct {
		blocks, anoms int
		err           error
	}
	done := make(chan result, 1)
	if *relayAddr != "" {
		go func() {
			st, err := relay.SendReliable(ag, *relayAddr, relay.ReliableOptions{})
			done <- result{st.Blocks, st.Anomalies, err}
		}()
	} else {
		f, err := os.Create(*spill)
		if err != nil {
			fail(err)
		}
		go func() {
			st, err := stream.Capture(ag, f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			done <- result{st.Blocks, st.Anomalies, err}
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	sig := <-sigc
	fmt.Printf("ktraced: %v: draining\n", sig)
	ag.Stop()
	res := <-done
	if res.err != nil {
		fmt.Fprintln(os.Stderr, "ktraced: drain:", res.err)
	}
	st := ag.Stats()
	fmt.Printf("ktraced: %d blocks (%d anomalous), %d events, %d dead clients reaped\n",
		res.blocks, res.anoms, st.Events, ag.Reaped())
	if err := ag.Close(); err != nil {
		fail(err)
	}
	if *rm {
		os.Remove(*seg)
	}
	if res.err != nil || res.anoms > 0 {
		os.Exit(1)
	}
}
