// Command tracecheck validates a trace file's structural invariants:
// per-CPU timestamp monotonicity, balanced syscall/PPC/page-fault/
// interrupt pairs, lock event pairing, event-registration coverage, and
// block-level anomalies. Exit status 1 on violations — suitable for CI
// over captured traces.
//
// With -salvage it switches to the forgiving reader: undecodable blocks
// are quarantined and reported instead of failing the run, a destroyed
// file header is recovered by scanning for block magics, and -o rewrites
// the surviving blocks as a clean trace file.
//
// With -shm the argument is a live shared-memory trace segment (owned by
// ktraced) instead of a trace file: tracecheck snapshots it through a
// read-only mapping — geometry, per-CPU fill and commit state, attached
// pids and lease ages — without stopping any producer.
//
// Usage:
//
//	tracecheck trace.ktr
//	tracecheck -salvage [-o repaired.ktr] [-j 8] damaged.ktr
//	tracecheck -shm /dev/shm/k42.seg
package main

import (
	"flag"
	"fmt"
	"os"

	ktrace "k42trace"
)

func main() {
	salvage := flag.Bool("salvage", false, "read forgivingly: quarantine bad blocks instead of failing")
	out := flag.String("o", "", "with -salvage: rewrite the surviving blocks to this file")
	workers := flag.Int("j", 0, "decode workers (0 = all cores)")
	shmSeg := flag.Bool("shm", false, "argument is a live shared-memory segment: inspect it without stopping producers")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-salvage [-o repaired.ktr]] [-j N] trace.ktr | tracecheck -shm segment")
		os.Exit(2)
	}
	path := flag.Arg(0)
	if *shmSeg {
		info, err := ktrace.InspectShmSegment(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck:", err)
			os.Exit(1)
		}
		info.Format(os.Stdout)
		return
	}
	if *salvage {
		runSalvage(path, *out, *workers)
		return
	}
	trace, _, dst, err := ktrace.OpenTraceFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	rep := trace.Validate()
	rep.Format(os.Stdout)
	if dst.Garbled() {
		fmt.Printf("decode skipped %d garbled words\n", dst.SkippedWords)
	}
	if !rep.OK() || dst.Garbled() {
		os.Exit(1)
	}
	fmt.Println("trace is structurally sound")
}

func runSalvage(path, out string, workers int) {
	trace, rep, err := ktrace.SalvageTraceFile(path, workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	rep.Format(os.Stdout)
	vrep := trace.Validate()
	vrep.Format(os.Stdout)
	if out != "" {
		if _, err := ktrace.SalvageTraceFileTo(path, out, workers); err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck:", err)
			os.Exit(1)
		}
		fmt.Printf("rewrote %d surviving blocks to %s\n", rep.BlocksGood, out)
	}
	if !rep.Clean() {
		os.Exit(1) // data was lost; scripts should notice
	}
}
