// Command tracecheck validates a trace file's structural invariants:
// per-CPU timestamp monotonicity, balanced syscall/PPC/page-fault/
// interrupt pairs, lock event pairing, event-registration coverage, and
// block-level anomalies. Exit status 1 on violations — suitable for CI
// over captured traces.
//
// Usage:
//
//	tracecheck trace.ktr
package main

import (
	"flag"
	"fmt"
	"os"

	ktrace "k42trace"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck trace.ktr")
		os.Exit(2)
	}
	trace, _, dst, err := ktrace.OpenTraceFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	rep := trace.Validate()
	rep.Format(os.Stdout)
	if dst.Garbled() {
		fmt.Printf("decode skipped %d garbled words\n", dst.SkippedWords)
	}
	if !rep.OK() || dst.Garbled() {
		os.Exit(1)
	}
	fmt.Println("trace is structurally sound")
}
