// Command tracegen produces a synthetic trace file with a configurable
// event mix, for exercising the analysis tools and measuring file-format
// properties without running the OS simulator.
//
// Usage:
//
//	tracegen -o trace.ktr -cpus 4 -events 100000 [-bufwords 16384] [-maxwords 5]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	ktrace "k42trace"
)

func main() {
	out := flag.String("o", "trace.ktr", "output file")
	cpus := flag.Int("cpus", 4, "processor slots")
	events := flag.Int("events", 100000, "events to generate")
	bufWords := flag.Int("bufwords", 16384, "buffer size in 64-bit words (the alignment boundary)")
	maxWords := flag.Int("maxwords", 5, "maximum payload words per event")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	tr, err := ktrace.New(ktrace.Config{
		CPUs: *cpus, BufWords: *bufWords, NumBufs: 8,
		Mode: ktrace.Stream, Clock: ktrace.NewSyncClock(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	tr.EnableAll()
	wait, err := ktrace.WriteTraceFile(tr, *out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	rng := rand.New(rand.NewSource(*seed))
	payload := make([]uint64, *maxWords)
	for i := 0; i < *events; i++ {
		cpu := tr.CPU(rng.Intn(*cpus))
		n := rng.Intn(*maxWords + 1)
		for j := 0; j < n; j++ {
			payload[j] = rng.Uint64()
		}
		cpu.LogWords(ktrace.MajorTest, uint16(n), payload[:n])
	}
	tr.Stop()
	cst, err := wait()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	st := tr.Stats()
	fmt.Printf("wrote %s: %d events, %d blocks, %d anomalies\n",
		*out, st.Events, cst.Blocks, cst.Anomalies)
	fmt.Printf("filler: %d events, %d words (%.2f%% of logged); exact boundary fits: %d (%.1f%%)\n",
		st.FillerEvents, st.FillerWords,
		100*float64(st.FillerWords)/float64(st.Words+st.FillerWords),
		st.ExactFit, 100*float64(st.ExactFit)/float64(st.Events))
}
