// Command shmlog is a shared-memory trace producer: it attaches to a
// segment owned by a running ktraced and logs from this process's address
// space — the application side of the paper's user-mapped buffers. Use
// several concurrent shmlog invocations to exercise true cross-process
// logging on one segment.
//
// Three modes: the default logs -n two-word test events round-robin
// across the segment's CPU slots (or one slot with -cpu); -workload
// instead runs the deterministic sched/syscall/lock synthetic workload on
// one slot, so the resulting trace exercises the analysis tools; -hang
// reserves buffer space and deliberately never commits it, blocking until
// killed — the fault-injection client for exercising the daemon's dead
// client reap and commit-count loss accounting.
//
// Usage:
//
//	shmlog -seg /dev/shm/k42.seg -n 100000
//	shmlog -seg /dev/shm/k42.seg -workload -cpu 1 -pid 202 -n 5000
//	shmlog -seg /dev/shm/k42.seg -hang -payload 3 & kill -9 $!
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	ktrace "k42trace"
	"k42trace/internal/event"
	"k42trace/internal/faultinject"
)

func main() {
	seg := flag.String("seg", "", "segment file to attach to")
	cpu := flag.Int("cpu", -1, "CPU slot to log on (-1: round-robin over all)")
	n := flag.Int("n", 10000, "events (default mode) or workload rounds (-workload)")
	pid := flag.Uint64("pid", uint64(os.Getpid()), "logical pid stamped into events")
	workload := flag.Bool("workload", false, "run the synthetic sched/syscall/lock workload")
	sleep := flag.Duration("sleep", 0, "pause between events (rate limiting)")
	hang := flag.Bool("hang", false, "reserve one event, never commit it, and block until killed (fault injection)")
	payload := flag.Int("payload", 3, "with -hang: payload words of the dead reservation")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "shmlog:", err)
		os.Exit(1)
	}
	if *seg == "" {
		fmt.Fprintln(os.Stderr, "shmlog: -seg is required")
		os.Exit(2)
	}
	cl, err := ktrace.Attach(*seg)
	if err != nil {
		fail(err)
	}
	fmt.Printf("shmlog: attached to %s as client slot %d (pid %d)\n", *seg, cl.Slot(), os.Getpid())

	if *hang {
		slot := *cpu
		if slot < 0 {
			slot = 0
		}
		words, ok := cl.CPU(slot).ReserveHang(event.MajorTest, 9, *payload)
		if !ok {
			fmt.Fprintln(os.Stderr, "shmlog: hang reservation failed (masked or dropped)")
			os.Exit(1)
		}
		fmt.Printf("shmlog: hung with %d uncommitted words, waiting for SIGKILL\n", words)
		select {} // the only way out is the kill — that is the point
	}

	start := time.Now()
	logged := 0
	if *workload {
		slot := *cpu
		if slot < 0 {
			slot = 0
		}
		logged = faultinject.SyntheticWorkload(cl.CPU(slot), *pid, *n)
	} else {
		for i := 0; i < *n; i++ {
			slot := *cpu
			if slot < 0 {
				slot = i % cl.NumCPUs()
			}
			if cl.CPU(slot).Log2(event.MajorTest, 1, uint64(i), *pid) {
				logged++
			}
			if *sleep > 0 {
				time.Sleep(*sleep)
			}
		}
	}
	el := time.Since(start)
	if err := cl.Detach(); err != nil {
		fail(err)
	}
	rate := float64(logged) / el.Seconds()
	fmt.Printf("shmlog: logged %d events in %v (%.0f ev/s)\n", logged, el.Round(time.Millisecond), rate)
	if logged == 0 {
		os.Exit(1)
	}
}
