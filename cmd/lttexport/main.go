// Command lttexport converts a ktrace trace file into the Linux Trace
// Toolkit's textual event-dump layout — the paper's stated next step for
// interoperating with LTT's visualizer (§5 future work).
//
// Usage:
//
//	lttexport trace.ktr > trace.ltt.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	ktrace "k42trace"
	"k42trace/internal/lttconv"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lttexport trace.ktr")
		os.Exit(2)
	}
	trace, _, _, err := ktrace.OpenTraceFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "lttexport:", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	st, err := lttconv.WriteText(w, trace)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lttexport:", err)
		os.Exit(1)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "lttexport:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "converted %d events (%d as Custom)\n", st.Events, st.Custom)
}
