// Command lockorder post-processes a trace for lock-order cycles — the
// §4.2 correctness-debugging use case: "to discover the deadlock, it was
// important to track the order of all the different requests ... a trace
// file was produced and post-processed to detect where the cycle had
// occurred." It replays lock acquire/release events, builds the lock-order
// graph, and reports every cycle with witness call chains.
//
// Usage:
//
//	lockorder trace.ktr
package main

import (
	"flag"
	"fmt"
	"os"

	ktrace "k42trace"
)

func main() {
	jobs := flag.Int("j", 0, "decode workers (0 = all cores)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lockorder [flags] trace.ktr")
		flag.PrintDefaults()
		os.Exit(2)
	}
	trace, _, _, err := ktrace.OpenTraceFileParallel(flag.Arg(0), *jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lockorder:", err)
		os.Exit(1)
	}
	rep := trace.LockOrder()
	if err := rep.Format(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lockorder:", err)
		os.Exit(1)
	}
	if len(rep.Cycles) > 0 {
		os.Exit(1) // a cycle is a finding
	}
}
