// Command memhot analyzes the hardware-counter sample events in a trace —
// the §2 integration: "the trace infrastructure may be used to study
// memory bottlenecks, memory hot-spots ... by logging hardware counter
// events, e.g., cache-line misses." It prints cache and coherence misses
// attributed by symbol.
//
// Usage:
//
//	memhot [-top N] trace.ktr
//
// Produce a trace with counter samples via:
//
//	sdet -cpus 8 -config coarse -hwc 50000 -o trace.ktr
package main

import (
	"flag"
	"fmt"
	"os"

	ktrace "k42trace"
)

func main() {
	top := flag.Int("top", 12, "rows to print")
	jobs := flag.Int("j", 0, "decode/analysis workers (0 = all cores)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: memhot [flags] trace.ktr")
		flag.PrintDefaults()
		os.Exit(2)
	}
	trace, _, _, err := ktrace.OpenTraceFileParallel(flag.Arg(0), *jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memhot:", err)
		os.Exit(1)
	}
	rep := trace.MemProfileParallel(*jobs)
	if rep.Samples == 0 {
		fmt.Println("no hardware-counter samples in trace (enable them with the hwc sampling period)")
		return
	}
	if err := rep.Format(os.Stdout, *top); err != nil {
		fmt.Fprintln(os.Stderr, "memhot:", err)
		os.Exit(1)
	}
}
