// Command sdet runs the paper's Figure 3 experiment: SPEC SDET-style
// throughput on the simulated multiprocessor OS, swept over processor
// counts, for the tuned (K42-like) and coarse (global-lock) kernels, with
// tracing compiled out, masked (compiled in, disabled — the paper's
// benchmarking configuration), or fully enabled.
//
// Usage:
//
//	sdet -sweep -cpus 1,2,4,8,16,24            # print the Figure 3 table
//	sdet -cpus 8 -config coarse -o trace.ktr   # one traced run -> file
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"k42trace/internal/event"
	"k42trace/internal/sdet"
)

// maskAtFlag collects repeatable -mask-at "ns=maskspec" values.
type maskAtFlag []sdet.MaskChange

func (f *maskAtFlag) String() string { return fmt.Sprintf("%d changes", len(*f)) }

func (f *maskAtFlag) Set(s string) error {
	at, spec, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want ns=maskspec, got %q", s)
	}
	t, err := strconv.ParseUint(strings.TrimSpace(at), 10, 64)
	if err != nil {
		return fmt.Errorf("bad time in %q: %v", s, err)
	}
	mask, err := event.ParseMask(spec)
	if err != nil {
		return err
	}
	*f = append(*f, sdet.MaskChange{AtNs: t, Mask: mask})
	return nil
}

func parseCPUs(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad cpu count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	sweep := flag.Bool("sweep", false, "run the full Figure 3 sweep and print the table")
	cpus := flag.String("cpus", "1,2,4,8,16,24", "processor counts (comma-separated; first entry used for single runs)")
	config := flag.String("config", "tuned", "kernel configuration: tuned or coarse")
	traceMode := flag.String("trace", "masked", "tracing: out, masked, on")
	out := flag.String("o", "", "capture the trace to this file (implies -trace on)")
	scriptsPerCPU := flag.Int("scripts", 4, "SDET scripts per CPU")
	cmds := flag.Int("cmds", 6, "commands per script")
	seed := flag.Int64("seed", 42, "workload seed")
	sample := flag.Uint64("sample", 0, "PC sampler period in virtual ns (0 = off)")
	hwc := flag.Uint64("hwc", 0, "hardware-counter sample period in virtual ns (0 = off)")
	stagger := flag.Uint64("stagger", 0, "delay script i by i*stagger virtual ns (startup-idle demo)")
	forks := flag.Bool("forks", false, "scripts fork a child per command")
	threads := flag.Bool("threads", false, "scripts spawn a thread per command (multithreaded processes)")
	irq := flag.Uint64("irq", 0, "timer IRQ period in virtual ns (0 = off)")
	var maskAt maskAtFlag
	flag.Var(&maskAt, "mask-at", `apply a trace-mask change mid-run: "ns=maskspec" (repeatable; maskspec as in ParseMask: all, none, 0x..., or major names)`)
	flag.Parse()

	list, err := parseCPUs(*cpus)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdet:", err)
		os.Exit(2)
	}
	params := sdet.Params{ScriptsPerCPU: *scriptsPerCPU, CommandsPerScript: *cmds,
		Seed: *seed, Forks: *forks, Threads: *threads}
	mode := map[string]sdet.TraceMode{
		"out": sdet.TraceCompiledOut, "masked": sdet.TraceMasked, "on": sdet.TraceOn,
	}[*traceMode]
	if *out != "" {
		mode = sdet.TraceOn
	}

	if *sweep {
		pts, err := sdet.Sweep(list, mode, params)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sdet:", err)
			os.Exit(1)
		}
		fmt.Println("SDET throughput (scripts/hour) vs processors — Figure 3")
		fmt.Print(sdet.FormatTable(pts))
		return
	}

	cfg := sdet.Config{
		CPUs:        list[0],
		Tuned:       *config == "tuned",
		Trace:       mode,
		Params:      params,
		Sample:      *sample,
		HWCSample:   *hwc,
		IRQPeriod:   *irq,
		Stagger:     *stagger,
		MaskChanges: maskAt,
	}
	if *config != "tuned" && *config != "coarse" {
		fmt.Fprintf(os.Stderr, "sdet: unknown config %q\n", *config)
		os.Exit(2)
	}
	var w *os.File
	if *out != "" {
		w, err = os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sdet:", err)
			os.Exit(1)
		}
		defer w.Close()
	}
	var pt sdet.Point
	if w != nil {
		pt, err = sdet.Run(cfg, w)
	} else {
		pt, err = sdet.Run(cfg, nil)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdet:", err)
		os.Exit(1)
	}
	fmt.Printf("cpus=%d config=%s trace=%v throughput=%.0f scripts/hour makespan=%.3fms events=%d\n",
		pt.CPUs, *config, pt.Trace, pt.Throughput,
		float64(pt.MakespanNs)/1e6, pt.Events)
	if *out != "" {
		fmt.Printf("trace written to %s\n", *out)
	}
}
