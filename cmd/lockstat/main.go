// Command lockstat reproduces the paper's Figure 7: the lock-contention
// analysis that drove K42's tuning loop ("we used the lock analysis tool
// to determine the most contended lock in the system, fixed it, and then
// ran the tool again"). For each (lock, call chain, domain) it reports
// total wait time, contention count, spin count, maximum wait, and pid,
// sortable on any column.
//
// Usage:
//
//	lockstat [-sort time|count|spin|max] [-top N] trace.ktr
package main

import (
	"flag"
	"fmt"
	"os"

	"k42trace/internal/analysis"

	ktrace "k42trace"
)

func main() {
	sortKey := flag.String("sort", "time", "column to sort by: time, count, spin, max")
	top := flag.Int("top", 10, "number of entries to print")
	jobs := flag.Int("j", 0, "decode/analysis workers (0 = all cores)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lockstat [flags] trace.ktr")
		flag.PrintDefaults()
		os.Exit(2)
	}
	trace, _, _, err := ktrace.OpenTraceFileParallel(flag.Arg(0), *jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lockstat:", err)
		os.Exit(1)
	}
	rep := trace.LockStatParallel(*jobs)
	switch *sortKey {
	case "time":
		rep.Sort(analysis.ByTime)
	case "count":
		rep.Sort(analysis.ByCount)
	case "spin":
		rep.Sort(analysis.BySpin)
	case "max":
		rep.Sort(analysis.ByMaxTime)
	default:
		fmt.Fprintf(os.Stderr, "lockstat: unknown sort key %q\n", *sortKey)
		os.Exit(2)
	}
	if len(rep.Rows) == 0 {
		fmt.Println("no contended locks in trace")
		return
	}
	if err := rep.Format(os.Stdout, *top); err != nil {
		fmt.Fprintln(os.Stderr, "lockstat:", err)
		os.Exit(1)
	}
	fmt.Printf("total wait across all locks: %.6fs over %d contended sites\n",
		trace.Seconds(rep.TotalWait()), len(rep.Rows))
}
