// Command tracerelay is the relayfs-style network transport: in collect
// mode it listens for trace streams and saves them as a trace file; in
// send mode it runs a traced SDET workload and streams the buffers to a
// collector as they seal, demonstrating that "this event log may be ...
// streamed over the network".
//
// The sender can also inject transport chaos — dropped, duplicated,
// reordered, torn, bit-flipped, or zeroed blocks, driven by a fixed seed —
// to exercise a collector's salvage path end to end (pair with
// tracecheck -salvage on the collected file).
//
// With -remote-control the sender also listens for control frames coming
// back down the collector connection and applies mask updates to its live
// tracer (see tracecolld's POST /live/mask) — the paper's "dynamically
// alter the types of events logged" knob, operated from the collector end.
// -loadgen replaces the finite SDET workload with a steady synthetic
// event stream for -duration, so there is something long-lived to retune.
//
// Usage:
//
//	tracerelay -collect -listen 127.0.0.1:7042 -o collected.ktr
//	tracerelay -send 127.0.0.1:7042 -cpus 4 -config coarse
//	tracerelay -send 127.0.0.1:7042 -chaos-seed 7 -drop 0.05 -dup 0.05 -reorder 4
//	tracerelay -send 127.0.0.1:7042 -remote-control -loadgen -duration 30s
//	tracerelay -fed http://127.0.0.1:7053 -key web-1 -remote-control -loadgen
//
// With -fed the sender never names a collector: before every dial it
// fetches the aggregator's consistent-hash ring and dials whichever
// shard owns -key, so killing a shard rehashes the sender onto a
// survivor on its next reconnect.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	ktrace "k42trace"
	"k42trace/internal/faultinject"
	"k42trace/internal/fed"
	"k42trace/internal/ksim"
	"k42trace/internal/relay"
	"k42trace/internal/sdet"
)

func main() {
	collect := flag.Bool("collect", false, "run as collector")
	listen := flag.String("listen", "127.0.0.1:7042", "collector listen address")
	out := flag.String("o", "collected.ktr", "collector output file")
	send := flag.String("send", "", "stream a traced SDET run to this collector address")
	cpus := flag.Int("cpus", 4, "sender: simulated processors")
	config := flag.String("config", "coarse", "sender: tuned or coarse")
	chaosSeed := flag.Int64("chaos-seed", 1, "sender: fault-injection seed")
	drop := flag.Float64("drop", 0, "sender: probability of dropping each block in transit")
	dup := flag.Float64("dup", 0, "sender: probability of duplicating each block")
	reorder := flag.Int("reorder", 0, "sender: reorder window in blocks (0 or 1 = off)")
	tear := flag.Float64("tear", 0, "sender: probability of tearing a block write")
	fflip := flag.Float64("flip", 0, "sender: probability of flipping one bit in a block")
	zero := flag.Float64("zero", 0, "sender: probability of zeroing a span of a block")
	reconnect := flag.Bool("reconnect", false, "sender: redial with backoff if the collector drops, re-sending the failed block")
	backoff := flag.Duration("backoff", 50*time.Millisecond, "sender: initial reconnect backoff (doubles up to 2s)")
	attempts := flag.Int("attempts", 8, "sender: dial/write attempts per block before giving up")
	fedURL := flag.String("fed", "", "sender: resolve the collector through this traceaggd HTTP base URL's consistent-hash ring (implies the reliable path)")
	key := flag.String("key", "", "sender: stable ring key for -fed (default hostname-pid)")
	remoteControl := flag.Bool("remote-control", false, "sender: apply mask updates pushed back by the collector (implies the reliable path)")
	loadgen := flag.Bool("loadgen", false, "sender: stream a steady synthetic workload instead of a finite SDET run")
	duration := flag.Duration("duration", 10*time.Second, "sender: how long -loadgen runs")
	rate := flag.Int("rate", 30000, "sender: -loadgen target logging attempts per second")
	flag.Parse()
	faults := faultinject.StreamFaults{
		Seed: *chaosSeed, DropProb: *drop, DupProb: *dup, ReorderWindow: *reorder,
		TearProb: *tear, FlipProb: *fflip, ZeroProb: *zero,
	}
	chaos := *drop > 0 || *dup > 0 || *reorder > 1 || *tear > 0 || *fflip > 0 || *zero > 0

	switch {
	case *collect:
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracerelay:", err)
			os.Exit(1)
		}
		h, st := ktrace.RelaySaveHandler(f)
		srv, err := ktrace.RelayListen(*listen, h)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracerelay:", err)
			os.Exit(1)
		}
		fmt.Printf("collecting on %s into %s (ctrl-C to stop)\n", srv.Addr(), *out)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
		if err := srv.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "tracerelay:", err)
		}
		f.Close()
		blocks, anoms := st.Snapshot()
		fmt.Printf("collected %d blocks (%d anomalous)\n", blocks, anoms)
	case *send != "" || *fedURL != "":
		useReliable := *reconnect || *remoteControl || *fedURL != ""
		var tr *ktrace.Tracer
		var runWorkload func() (string, error)
		if *loadgen {
			tr = ktrace.MustNew(ktrace.Config{
				CPUs: *cpus, BufWords: 16384, NumBufs: 8, Mode: ktrace.Stream})
			tr.EnableAll()
			runWorkload = func() (string, error) {
				attempted, logged := runLoadgen(tr, *duration, *rate)
				return fmt.Sprintf("loadgen: %d logging attempts, %d events logged over %s",
					attempted, logged, *duration), nil
			}
		} else {
			k, ktr, err := ksim.NewTracedKernel(
				ksim.Config{CPUs: *cpus, Tuned: *config == "tuned", SamplePeriod: 100_000},
				ktrace.Config{BufWords: 16384, NumBufs: 8, Mode: ktrace.Stream})
			if err != nil {
				fmt.Fprintln(os.Stderr, "tracerelay:", err)
				os.Exit(1)
			}
			ktr.EnableAll()
			tr = ktr
			runWorkload = func() (string, error) {
				res, err := k.Run(sdet.Workload(*cpus, sdet.DefaultParams()))
				if err != nil {
					return "", err
				}
				return fmt.Sprintf("streamed %d events (throughput %.0f scripts/hour)",
					res.TraceEvents, res.Throughput()), nil
			}
		}
		var inj *faultinject.Injector
		var wrap func(io.Writer) io.Writer
		if chaos {
			wrap = func(w io.Writer) io.Writer {
				inj = faultinject.NewInjector(w, faults)
				return inj
			}
		}
		done := make(chan error, 1)
		var rstats relay.ReliableStats
		go func() {
			var err error
			if useReliable {
				opt := relay.ReliableOptions{
					Wrap:           wrap,
					InitialBackoff: *backoff,
					MaxAttempts:    *attempts,
				}
				if *remoteControl {
					opt.OnControl = relay.MaskApplier(tr)
				}
				if *fedURL != "" {
					// Every dial — including each reconnect — re-resolves the
					// owner, so a shard death rehashes this producer onto the
					// survivor the ring assigns it to.
					k := *key
					if k == "" {
						host, _ := os.Hostname()
						k = fmt.Sprintf("%s-%d", host, os.Getpid())
					}
					opt.Resolve = fed.RingResolver(*fedURL, k)
				}
				rstats, err = relay.SendReliable(tr, *send, opt)
			} else {
				_, err = relay.SendThrough(tr, *send, wrap)
			}
			done <- err
		}()
		summary, err := runWorkload()
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracerelay:", err)
			os.Exit(1)
		}
		finalMask := tr.Mask()
		tr.Stop()
		if err := <-done; err != nil {
			fmt.Fprintln(os.Stderr, "tracerelay:", err)
			os.Exit(1)
		}
		fmt.Println(summary)
		if useReliable {
			fmt.Printf("reliable: %d blocks, %d dials, %d retries, %d dropped\n",
				rstats.Blocks, rstats.Dials, rstats.Retries, rstats.Dropped)
		}
		if *remoteControl {
			fmt.Printf("remote-control: %d control frames, %d mask applies, final mask %#x\n",
				rstats.ControlFrames, tr.MaskApplies(), finalMask)
		}
		if inj != nil {
			fmt.Printf("chaos (seed %d): %s\n", *chaosSeed, inj.Stats())
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: tracerelay -collect [-listen addr -o file] | -send addr")
		flag.PrintDefaults()
		os.Exit(2)
	}
}

// runLoadgen logs a steady mix of MajorTest, MajorMem, and MajorSched
// events round-robin across CPUs for the given duration, pacing itself to
// roughly rate attempts per second. Every major is attempted every cycle
// regardless of the current mask — that is the point: when a collector
// narrows the mask remotely, the disabled majors' attempts keep costing
// only the mask check, and their events visibly stop arriving. Returns
// (attempts, events actually logged).
func runLoadgen(tr *ktrace.Tracer, d time.Duration, rate int) (attempted, logged uint64) {
	cpus := tr.NumCPUs()
	perTick := rate / 1000 / 3 // cycles per 1ms tick; 3 attempts per cycle
	if perTick < 1 {
		perTick = 1
	}
	deadline := time.Now().Add(d)
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	var n uint64
	for time.Now().Before(deadline) {
		<-tick.C
		for i := 0; i < perTick; i++ {
			cpu := tr.CPU(int(n) % cpus)
			if cpu.Log1(ktrace.MajorTest, 100, n) {
				logged++
			}
			if cpu.Log2(ktrace.MajorMem, 200, n, uint64(cpus)) {
				logged++
			}
			if cpu.Log1(ktrace.MajorSched, 300, n) {
				logged++
			}
			attempted += 3
			n++
		}
	}
	return attempted, logged
}
