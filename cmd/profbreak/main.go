// Command profbreak reproduces the paper's Figure 6: the statistical
// execution profile driven by PC-sampling events — "a sorted histogram of
// the routines that were statistically most active" for one process (or
// all of them).
//
// Usage:
//
//	profbreak [-pid N | -all] [-top N] trace.ktr
package main

import (
	"flag"
	"fmt"
	"os"

	ktrace "k42trace"
)

func main() {
	pid := flag.Uint64("pid", 0, "process to profile")
	all := flag.Bool("all", false, "profile all processes combined")
	top := flag.Int("top", 12, "histogram entries to print")
	jobs := flag.Int("j", 0, "decode/analysis workers (0 = all cores)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: profbreak [flags] trace.ktr")
		flag.PrintDefaults()
		os.Exit(2)
	}
	trace, _, _, err := ktrace.OpenTraceFileParallel(flag.Arg(0), *jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "profbreak:", err)
		os.Exit(1)
	}
	target := *pid
	if *all {
		target = ^uint64(0)
	}
	p := trace.ProfileParallel(target, *jobs)
	if p.Total == 0 {
		fmt.Println("no PC samples in trace (was the sampler enabled?)")
		return
	}
	if err := p.Format(os.Stdout, *top); err != nil {
		fmt.Fprintln(os.Stderr, "profbreak:", err)
		os.Exit(1)
	}
	fmt.Printf("%d samples total\n", p.Total)
}
