// Command crashdump implements the post-mortem tool the paper called for
// (§4.2): when a crashed system cannot run the debugger's dump hook, the
// raw trace memory (per-CPU arrays, indexes, commit counts) saved in a
// crash-dump image is decoded offline into the most recent activity per
// CPU, with commit-count anomaly checks for events lost in the crash.
//
// Usage:
//
//	crashdump -demo crash.kcd      # produce a demo dump from a traced run
//	crashdump crash.kcd            # decode and list a dump
package main

import (
	"flag"
	"fmt"
	"os"

	ktrace "k42trace"
	"k42trace/internal/core"
	"k42trace/internal/ksim"
	"k42trace/internal/sdet"
)

func main() {
	demo := flag.Bool("demo", false, "generate a demonstration dump from a traced SDET run instead of reading one")
	tail := flag.Int("tail", 12, "events to list per CPU")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: crashdump [-demo] file.kcd")
		flag.PrintDefaults()
		os.Exit(2)
	}
	path := flag.Arg(0)
	if *demo {
		makeDemo(path)
		return
	}
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crashdump:", err)
		os.Exit(1)
	}
	defer f.Close()
	d, err := core.ReadCrashDump(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crashdump:", err)
		os.Exit(1)
	}
	fmt.Printf("crash dump: %d CPUs, %d x %d-word buffers, clock %dHz\n",
		d.CPUs, d.NumBufs, d.BufWords, d.ClockHz)
	for cpu := 0; cpu < d.CPUs; cpu++ {
		evs, info, err := d.Events(cpu)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crashdump:", err)
			os.Exit(1)
		}
		fmt.Printf("\n--- cpu %d: %d events in %d resident buffers; garbled words %d; anomalies %d ---\n",
			cpu, len(evs), info.Buffers, info.Stats.SkippedWords, info.Anomalies)
		if len(evs) > *tail {
			evs = evs[len(evs)-*tail:]
		}
		trace := ktrace.BuildTrace(evs, d.ClockHz, ktrace.DefaultRegistry())
		trace.List(os.Stdout, ktrace.ListOptions{})
	}
}

func makeDemo(path string) {
	k, tr, err := ksim.NewTracedKernel(
		ksim.Config{CPUs: 2, Tuned: false, SamplePeriod: 200_000},
		ktrace.Config{BufWords: 1024, NumBufs: 4})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crashdump:", err)
		os.Exit(1)
	}
	tr.EnableAll()
	if _, err := k.Run(sdet.Workload(2, sdet.Params{ScriptsPerCPU: 2, CommandsPerScript: 3, Seed: 3})); err != nil {
		fmt.Fprintln(os.Stderr, "crashdump:", err)
		os.Exit(1)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crashdump:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := tr.WriteCrashDump(f); err != nil {
		fmt.Fprintln(os.Stderr, "crashdump:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote demo crash dump to %s\n", path)
}
