// Command traceaggd is the federation root: the tier above a pool of
// tracecolld shards. Shards dial its relay listener with their uplinks
// (relaying accepted blocks upward over the standard wire) and POST
// heartbeats to its HTTP surface; producers GET the consistent-hash ring
// document and dial whichever shard owns their key. A mask POSTed here
// fans down through every shard to every producer — two hops of the same
// control-frame machinery — and the federated overview merges the
// shards' cumulative summaries into one per-process view of the whole
// fleet.
//
// HTTP surface (on -http):
//
//	/healthz        liveness
//	/metrics        Prometheus text exposition (the shard-uplink mirror)
//	/live/overview  the aggregator's own collector snapshot
//	/live/mask      GET control state; POST mask=<spec> fans down the tree
//	/fed/ring       the ring document producers resolve owners from
//	/fed/heartbeat  POST one shard heartbeat
//	/fed/overview   the federated merged overview
//	/fed/members    every shard ever seen, with state and overview
//
// Usage:
//
//	traceaggd -listen 127.0.0.1:7052 -http 127.0.0.1:7053 -spill fleet.ktr
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"k42trace/internal/event"
	"k42trace/internal/fed"
	"k42trace/internal/live"
	"k42trace/internal/relay"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7052", "shard uplink listen address")
	httpAddr := flag.String("http", "127.0.0.1:7053", "federation HTTP address")
	window := flag.Duration("window", 250*time.Millisecond, "analysis window width (trace time)")
	maxWindows := flag.Int("max-windows", 32, "live windows kept before eviction")
	queue := flag.Int("queue", 64, "per-uplink ingest queue depth, blocks")
	cpuSlots := flag.Int("cpu-slots", 4096, "total remapped CPU slots across all shard uplinks")
	spillPath := flag.String("spill", "", "spill every mirrored block to this trace file")
	memberTTL := flag.Duration("member-ttl", 3*time.Second, "expire shards whose heartbeats stop for this long")
	maskSpec := flag.String("mask", "", `initial trace mask fanned down to every shard ("all", a hex literal, or major names)`)
	flag.Parse()

	opt := fed.AggOptions{
		Live: live.Options{
			Window:      *window,
			MaxWindows:  *maxWindows,
			QueueBlocks: *queue,
			CPUSlots:    *cpuSlots,
		},
		MemberTTL: *memberTTL,
	}
	var spill *os.File
	if *spillPath != "" {
		f, err := os.Create(*spillPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "traceaggd:", err)
			os.Exit(1)
		}
		spill = f
		opt.Live.Spill = f
	}

	a := fed.NewAggregator(opt)
	if *maskSpec != "" {
		m, err := event.ParseMask(*maskSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "traceaggd: bad -mask: %v\n", err)
			os.Exit(2)
		}
		a.SetMask(m)
		fmt.Printf("traceaggd: desired mask %s (%s)\n",
			event.MaskString(m|event.MajorControl.Bit()),
			strings.Join(event.MaskMajors(m|event.MajorControl.Bit()), ","))
	}
	srv, err := relay.ListenConns(*listen, a.Handler())
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceaggd:", err)
		os.Exit(1)
	}
	web := &http.Server{Addr: *httpAddr, Handler: a.Mux()}
	webErr := make(chan error, 1)
	go func() { webErr <- web.ListenAndServe() }()
	fmt.Printf("traceaggd: uplinks on %s, http on %s\n", srv.Addr(), *httpAddr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("traceaggd: %v, draining\n", s)
	case err := <-webErr:
		fmt.Fprintln(os.Stderr, "traceaggd: http:", err)
	}

	srv.CloseNow()
	if err := a.Drain(); err != nil {
		fmt.Fprintln(os.Stderr, "traceaggd: spill:", err)
	}
	if spill != nil {
		if err := spill.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "traceaggd: spill:", err)
		}
	}
	web.Close()

	doc := a.Overview()
	var active, left, expired int
	for _, m := range doc.Members {
		switch m.State {
		case fed.StateActive:
			active++
		case fed.StateLeft:
			left++
		case fed.StateExpired:
			expired++
		}
	}
	fmt.Printf("traceaggd: %d shards seen (%d active, %d left, %d expired), %d processes in merged overview\n",
		len(doc.Members), active, left, expired, len(doc.Overview))
	for _, m := range doc.Members {
		fmt.Printf("traceaggd: shard %s (%s) %s: %d producers, %d blocks, %d events\n",
			m.Name, m.Addr, m.State, m.Producers, m.Blocks, m.Events)
	}
	if *spillPath != "" {
		fmt.Printf("traceaggd: mirrored spill in %s\n", *spillPath)
	}
}
