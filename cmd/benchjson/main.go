// Command benchjson converts `go test -bench` text output into a JSON
// benchmark artifact (for CI upload and cross-run comparison), echoing
// the original output through so it still shows in the build log.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -o BENCH.json
//
// With -baseline it doubles as the CI regression gate: ns/op for every
// benchmark present in both the run and the baseline artifact is
// compared, and any regression beyond -tolerance percent fails the run.
//
//	go test -bench=BenchmarkShmLog . | benchjson -baseline BENCH_pr8.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Procs       int     `json:"procs,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric values, unit → value.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Artifact is the whole file.
type Artifact struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

func main() {
	out := flag.String("o", "", "write JSON here (default stdout only)")
	baseline := flag.String("baseline", "", "compare ns/op against this artifact; exit 1 on regression")
	tolerance := flag.Float64("tolerance", 20, "allowed ns/op regression percent with -baseline")
	flag.Parse()

	art := Artifact{Results: []Result{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // passthrough
		switch {
		case strings.HasPrefix(line, "goos: "):
			art.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			art.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			art.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		r := Result{Name: m[1], Package: pkg}
		r.Procs, _ = strconv.Atoi(m[2])
		r.Iterations, _ = strconv.ParseInt(m[3], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[4], 64)
		for _, f := range strings.Split(strings.TrimSpace(m[5]), "\t") {
			f = strings.TrimSpace(f)
			parts := strings.Fields(f)
			if len(parts) != 2 {
				continue
			}
			v, err := strconv.ParseFloat(parts[0], 64)
			if err != nil {
				continue
			}
			switch parts[1] {
			case "MB/s":
				r.MBPerS = v
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			default:
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[parts[1]] = v
			}
		}
		art.Results = append(art.Results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if *out != "" {
		b, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		b = append(b, '\n')
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(art.Results), *out)
	}
	if *baseline != "" {
		if err := checkBaseline(*baseline, art.Results, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
}

// checkBaseline compares ns/op against a previously exported artifact.
// Only benchmarks present in both runs are compared, so a narrowed -bench
// filter works against a full baseline — but zero overlap is an error,
// catching a filter typo that would otherwise pass vacuously.
func checkBaseline(path string, results []Result, tolerance float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Artifact
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	ref := make(map[string]float64, len(base.Results))
	for _, r := range base.Results {
		ref[r.Package+"."+r.Name] = r.NsPerOp
	}
	matched, failed := 0, 0
	for _, r := range results {
		want, ok := ref[r.Package+"."+r.Name]
		if !ok || want <= 0 {
			continue
		}
		matched++
		delta := 100 * (r.NsPerOp - want) / want
		verdict := "ok"
		if delta > tolerance {
			verdict = "REGRESSION"
			failed++
		}
		fmt.Fprintf(os.Stderr, "benchjson: %-60s %10.1f -> %10.1f ns/op (%+6.1f%%) %s\n",
			r.Name, want, r.NsPerOp, delta, verdict)
	}
	if matched == 0 {
		return fmt.Errorf("no benchmarks in this run matched baseline %s", path)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d benchmarks regressed more than %.0f%% vs %s",
			failed, matched, tolerance, path)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks within %.0f%% of %s\n",
		matched, tolerance, path)
	return nil
}
