// Command benchjson converts `go test -bench` text output into a JSON
// benchmark artifact (for CI upload and cross-run comparison), echoing
// the original output through so it still shows in the build log.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -o BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Package    string  `json:"package,omitempty"`
	Procs      int     `json:"procs,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	MBPerS     float64 `json:"mb_per_s,omitempty"`
	BytesPerOp int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64  `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric values, unit → value.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Artifact is the whole file.
type Artifact struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

func main() {
	out := flag.String("o", "", "write JSON here (default stdout only)")
	flag.Parse()

	art := Artifact{Results: []Result{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // passthrough
		switch {
		case strings.HasPrefix(line, "goos: "):
			art.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			art.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			art.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		r := Result{Name: m[1], Package: pkg}
		r.Procs, _ = strconv.Atoi(m[2])
		r.Iterations, _ = strconv.ParseInt(m[3], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[4], 64)
		for _, f := range strings.Split(strings.TrimSpace(m[5]), "\t") {
			f = strings.TrimSpace(f)
			parts := strings.Fields(f)
			if len(parts) != 2 {
				continue
			}
			v, err := strconv.ParseFloat(parts[0], 64)
			if err != nil {
				continue
			}
			switch parts[1] {
			case "MB/s":
				r.MBPerS = v
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			default:
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[parts[1]] = v
			}
		}
		art.Results = append(art.Results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	b, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if *out == "" {
		return
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(art.Results), *out)
}
