//go:build !ktrace_off

package ktrace

// CompiledIn reports whether trace statements are compiled into this
// build. It is a true constant, so instrumentation guarded by it is
// eliminated entirely by the compiler when the binary is built with
// -tags ktrace_off — the paper's goal 6: "have minimal impact on the
// system when tracing is not enabled, and allow for zero impact by
// providing the ability to 'compile out' events if desired."
//
// Usage at instrumentation sites:
//
//	if ktrace.CompiledIn {
//	    cpu.Log2(ktrace.MajorUser, evStep, a, b)
//	}
//
// With the default build this is the normal one-load mask check; with
// -tags ktrace_off the branch and the call vanish from the binary.
const CompiledIn = true
