//go:build ktrace_off

package ktrace

// CompiledIn is false in ktrace_off builds: instrumentation guarded by it
// is dead code and is removed by the compiler. See compiledin.go.
const CompiledIn = false
