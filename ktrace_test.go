package ktrace_test

import (
	"bytes"
	"path/filepath"
	"testing"

	ktrace "k42trace"
)

// TestPublicAPIRoundTrip drives the full pipeline through the public
// facade only: trace -> file -> analysis.
func TestPublicAPIRoundTrip(t *testing.T) {
	tr := ktrace.MustNew(ktrace.Config{
		CPUs: 2, BufWords: 64, NumBufs: 4,
		Mode: ktrace.Stream, Clock: ktrace.NewManualClock(1),
	})
	tr.EnableAll()
	path := filepath.Join(t.TempDir(), "trace.ktr")
	wait, err := ktrace.WriteTraceFile(tr, path)
	if err != nil {
		t.Fatal(err)
	}
	reg := ktrace.NewRegistry()
	reg.MustRegister(ktrace.MajorUser, 20, "TRACE_APP_STEP", "64", "step %0[%lld]")
	for i := 0; i < 300; i++ {
		tr.CPU(i%2).Log1(ktrace.MajorUser, 20, uint64(i))
	}
	tr.Stop()
	if _, err := wait(); err != nil {
		t.Fatal(err)
	}
	trace, meta, st, err := ktrace.OpenTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Garbled() {
		t.Fatal("garbled")
	}
	if meta.CPUs != 2 || meta.BufWords != 64 {
		t.Errorf("meta %+v", meta)
	}
	n := 0
	for i := range trace.Events {
		e := &trace.Events[i]
		if e.Major() == ktrace.MajorUser {
			n++
			name, text := ktrace.Describe(reg, e)
			if name != "TRACE_APP_STEP" || text == "" {
				t.Fatalf("describe: %q %q", name, text)
			}
		}
	}
	if n != 300 {
		t.Fatalf("recovered %d events, want 300", n)
	}
	var buf bytes.Buffer
	lines, err := trace.List(&buf, ktrace.ListOptions{Limit: 10})
	if err != nil || lines != 10 {
		t.Fatalf("list: %d %v", lines, err)
	}
}

func TestPublicFlightRecorder(t *testing.T) {
	tr := ktrace.MustNew(ktrace.Config{CPUs: 1, BufWords: 64, NumBufs: 2})
	tr.Enable(ktrace.MajorTest)
	c := tr.CPU(0)
	for i := 0; i < 100; i++ {
		c.Log2(ktrace.MajorTest, 1, uint64(i), uint64(i*i))
	}
	evs, info := tr.Dump(0)
	if info.Stats.Garbled() || len(evs) == 0 {
		t.Fatalf("dump: %d events, %+v", len(evs), info)
	}
	tail := tr.TailEvents(0, 3)
	if len(tail) != 3 || tail[2].Data[0] != 99 {
		t.Fatalf("tail: %+v", tail)
	}
}

func TestPublicPackHelpers(t *testing.T) {
	toks, err := ktrace.ParseTokens("32 32 str")
	if err != nil {
		t.Fatal(err)
	}
	words, err := ktrace.Pack(toks, []ktrace.Value{
		{Int: 1}, {Int: 2}, {Str: "hi", IsStr: true}})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := ktrace.Unpack(toks, words)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].Int != 1 || vals[1].Int != 2 || vals[2].Str != "hi" {
		t.Fatalf("vals %+v", vals)
	}
	h := ktrace.MakeHeader(5, 2, ktrace.MajorUser, 9)
	if h.Timestamp() != 5 || h.Len() != 2 || h.Major() != ktrace.MajorUser || h.Minor() != 9 {
		t.Fatal("header round trip failed")
	}
}
