package ktrace

import (
	"bytes"
	"runtime"
	"testing"

	"k42trace/internal/core"
	"k42trace/internal/event"
	"k42trace/internal/stream"
)

// fixedClock returns the same instant forever. clock.Manual cannot serve
// here: its step is coerced to at least 1, so plain logging (one clock
// read per event) and batched logging (one read per batch) would diverge
// by construction. With a constant clock, any byte difference between the
// two streams is a real layout difference.
type fixedClock struct{}

func (fixedClock) Now(cpu int) uint64 { return 5 }
func (fixedClock) Hz() uint64         { return 1e9 }

// captureRun drives one tracer through fn and returns the serialized
// trace stream.
func captureRun(t *testing.T, cfg Config, fn func(tr *Tracer)) []byte {
	t.Helper()
	cfg.Mode = Stream
	cfg.Clock = fixedClock{}
	tr := MustNew(cfg)
	tr.EnableAll()
	var buf bytes.Buffer
	get := CaptureAsync(tr, &buf)
	fn(tr)
	tr.Stop()
	if _, err := get(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBatchStreamParity proves batching is an optimization, not a format
// change: the same event sequence logged plainly, through an explicit
// Batch, and through the per-P PLog fast path produces byte-identical
// trace streams — so every analysis is trivially unchanged by batching.
//
// The tiling makes "no filler" exact: BufWords 16 leaves 14 words per
// buffer after the clock anchor, one batch of 14 words is exactly 7
// two-word Log1 events, and 70 events fill 10 buffers with no tail.
func TestBatchStreamParity(t *testing.T) {
	cfg := Config{CPUs: 1, BufWords: 16, NumBufs: 4}
	const batchEvents, batches = 7, 10

	logOne := func(c CPU, i int) bool { return c.Log1(MajorTest, 9, uint64(i)) }

	plain := captureRun(t, cfg, func(tr *Tracer) {
		c := tr.CPU(0)
		for i := 0; i < batches*batchEvents; i++ {
			if !logOne(c, i) {
				t.Fatalf("plain log %d failed", i)
			}
		}
	})

	batched := captureRun(t, cfg, func(tr *Tracer) {
		c := tr.CPU(0)
		var b Batch
		for i := 0; i < batches*batchEvents; i++ {
			if i%batchEvents == 0 {
				if !c.OpenBatch(&b, MajorTest, 2*batchEvents) {
					t.Fatalf("OpenBatch %d failed", i)
				}
			}
			if !b.Log1(MajorTest, 9, uint64(i)) {
				t.Fatalf("batched log %d failed", i)
			}
		}
		b.Close()
	})

	// The per-P path parks batches per P; pin to one P so a mid-batch
	// migration cannot split the sequence across two parked batches.
	prev := runtime.GOMAXPROCS(1)
	perPCfg := cfg
	perPCfg.BatchWords = 2 * batchEvents
	perP := captureRun(t, perPCfg, func(tr *Tracer) {
		for i := 0; i < batches*batchEvents; i++ {
			if !tr.PLog1(MajorTest, 9, uint64(i)) {
				t.Fatalf("PLog %d failed", i)
			}
		}
	})
	runtime.GOMAXPROCS(prev)

	if !bytes.Equal(plain, batched) {
		t.Errorf("explicit-batch stream differs from plain stream (%d vs %d bytes)",
			len(batched), len(plain))
	}
	if !bytes.Equal(plain, perP) {
		t.Errorf("per-P fast-path stream differs from plain stream (%d vs %d bytes)",
			len(perP), len(plain))
	}

	// And the decoded view agrees: 10 blocks, 70 events, zero filler.
	r, err := stream.NewReader(bytes.NewReader(plain), int64(len(plain)))
	if err != nil {
		t.Fatal(err)
	}
	if r.NumBlocks() != batches {
		t.Errorf("%d blocks, want %d", r.NumBlocks(), batches)
	}
	var events int
	for blk := 0; blk < r.NumBlocks(); blk++ {
		hdr, words, err := r.Block(blk)
		if err != nil {
			t.Fatal(err)
		}
		evs, st := core.DecodeBuffer(hdr.CPU, words)
		if st.Garbled() || st.FillerWords != 0 {
			t.Errorf("block %d: garbled=%v filler=%d (tiling should leave none)",
				blk, st.Garbled(), st.FillerWords)
		}
		for _, e := range evs {
			if e.Major() == event.MajorTest {
				events++
			}
		}
	}
	if events != batches*batchEvents {
		t.Errorf("decoded %d events, want %d", events, batches*batchEvents)
	}
}
