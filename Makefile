GO ?= go

RACE_PKGS = ./internal/core/ ./internal/stream/ ./internal/relay/ ./internal/analysis/ ./internal/faultinject/ ./internal/live/ ./internal/shm/ ./internal/fed/ ./internal/store/ ./internal/diff/

# Per-target budget for the fuzz smoke run (matches the CI job).
FUZZTIME ?= 30s

# Where `make bench` writes its machine-readable results.
BENCH_JSON ?= BENCH_pr10.json

.PHONY: check build vet test race bench bench-smoke fuzz live-smoke shm-smoke fed-smoke store-smoke diff-smoke

check: vet build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the concurrent layers: the lockless logger, the block-parallel
# decode pipeline, the TCP relay, the per-CPU analysis fan-out, and the
# fault-injection harness that stresses all of them.
race:
	$(GO) test -race $(RACE_PKGS)

# Smoke-fuzz the decoders: the seed corpus lives under each package's
# testdata/fuzz (regenerate with go test <pkg> -updatefuzzseeds). Go only
# allows one fuzz target per invocation, hence one line per target.
fuzz:
	$(GO) test ./internal/core/ -fuzz='^FuzzDecodeBlock$$' -fuzztime=$(FUZZTIME) -run '^$$'
	$(GO) test ./internal/stream/ -fuzz='^FuzzReadStream$$' -fuzztime=$(FUZZTIME) -run '^$$'
	$(GO) test ./internal/stream/ -fuzz='^FuzzSalvage$$' -fuzztime=$(FUZZTIME) -run '^$$'
	$(GO) test ./internal/store/ -fuzz='^FuzzQueryParams$$' -fuzztime=$(FUZZTIME) -run '^$$'

# All benchmarks — the offline suite at the repo root plus the live-ingest,
# federation-ingest, and store-query benchmarks — converted to a JSON
# artifact for CI upload and comparison (the fed rows carry an uplink_frac
# extra metric; the store rows carry events/query).
bench:
	$(GO) test -run '^$$' -bench=. -benchmem . ./internal/live/ ./internal/fed/ ./internal/store/ > BENCH.txt
	$(GO) run ./cmd/benchjson -o $(BENCH_JSON) < BENCH.txt
	@rm -f BENCH.txt

# Hot-path regression gate: re-run the cross-address-space logging
# benchmark and fail if any row regressed more than 20% against the
# checked-in baseline artifact. Run before `bench`, which overwrites the
# baseline file with fresh numbers.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkShmLog' . | $(GO) run ./cmd/benchjson -baseline $(BENCH_JSON)

# End-to-end live-monitoring smoke: collector + two producers + HTTP
# surface + SIGTERM drain + tracecheck on the spill.
live-smoke:
	./scripts/live_smoke.sh

# End-to-end shared-memory smoke: ktraced + real client processes +
# SIGKILL mid-reservation + live tracecheck -shm + drain + exact loss
# accounting via tracecheck -salvage.
shm-smoke:
	./scripts/shm_smoke.sh

# End-to-end federation smoke: traceaggd + three federated tracecolld
# shards + ring-resolved producers + aggregator mask fan-down + a
# SIGKILLed shard expiring off the ring + drain + tracecheck.
fed-smoke:
	./scripts/fed_smoke.sh

# End-to-end trace-store smoke: tracestored + HTTP/watch-dir ingest +
# queries and aggregations + cursor pagination vs the unpaginated listing
# + segment-cache hits + admission-control 429s + event-conserving
# compaction + byte-budget GC + tracecheck on every stored segment + the
# tracecolld -store handoff.
store-smoke:
	./scripts/store_smoke.sh

# End-to-end differential-analysis smoke: generate a coarse and a tuned run
# of the same workload, tracediff must surface the planted lock regression,
# self-diff must be exactly zero (gated with -max-divergence 0), the
# threshold gate must exit 3, and the HTML timeline exports (kmon and
# stacked tracediff) must be deterministic and self-contained.
diff-smoke:
	./scripts/diff_smoke.sh
