GO ?= go

RACE_PKGS = ./internal/core/ ./internal/stream/ ./internal/relay/ ./internal/analysis/

.PHONY: check build vet test race bench

check: vet build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the concurrent layers: the lockless logger, the block-parallel
# decode pipeline, the TCP relay, and the per-CPU analysis fan-out.
race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -bench=. -benchmem .
