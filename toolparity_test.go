package ktrace

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// TestToolOutputParallelParity proves that the -j flag in the CLI tools
// is a pure speed knob: every tool-facing rendering — kmon's timeline
// and utilization, tracelist's listing, lockorder's report — is
// byte-identical whether the golden corpus traces are decoded with 1
// worker or 8. (truncated.ktr is excluded: a torn file needs the salvage
// path, which has its own parity coverage.)
func TestToolOutputParallelParity(t *testing.T) {
	// garbled.ktr cannot pass the strict reader (destroyed block magic);
	// it goes through the salvage opener, which also takes a worker count.
	traces := []struct {
		file    string
		salvage bool
	}{
		{"clean.ktr", false},
		{"crosscpu-io.ktr", false},
		{"garbled.ktr", true},
	}
	open := func(t *testing.T, file string, salvage bool, workers int) (*Trace, TraceMeta) {
		t.Helper()
		path := filepath.Join(corpusDir, file)
		if salvage {
			tr, rep, err := SalvageTraceFile(path, workers)
			if err != nil {
				t.Fatal(err)
			}
			return tr, rep.Meta
		}
		tr, meta, _, err := OpenTraceFileParallel(path, workers)
		if err != nil {
			t.Fatal(err)
		}
		return tr, meta
	}
	renders := []struct {
		name   string
		render func(tr *Trace, meta TraceMeta) string
	}{
		{"kmon-timeline", func(tr *Trace, meta TraceMeta) string {
			tl := tr.Timeline(100)
			var b strings.Builder
			b.WriteString(tl.ASCII())
			for cpu, u := range tl.Utilization() {
				fmt.Fprintf(&b, "cpu%-3d utilization %5.1f%%\n", cpu, u*100)
			}
			return b.String()
		}},
		{"tracelist", func(tr *Trace, meta TraceMeta) string {
			var b strings.Builder
			if _, err := tr.List(&b, ListOptions{Limit: 400}); err != nil {
				t.Fatal(err)
			}
			return b.String()
		}},
		{"lockorder", func(tr *Trace, meta TraceMeta) string {
			var b strings.Builder
			if err := tr.LockOrder().Format(&b); err != nil {
				t.Fatal(err)
			}
			return b.String()
		}},
	}
	for _, trace := range traces {
		for _, r := range renders {
			t.Run(trace.file+"/"+r.name, func(t *testing.T) {
				var base string
				for i, workers := range []int{1, 8} {
					tr, meta := open(t, trace.file, trace.salvage, workers)
					out := r.render(tr, meta)
					if out == "" {
						t.Fatalf("empty %s output for %s", r.name, trace.file)
					}
					if i == 0 {
						base = out
						continue
					}
					if out != base {
						t.Errorf("%s differs between -j1 and -j%d on %s:\n-j1:\n%s\n-j%d:\n%s",
							r.name, workers, trace.file, base, workers, out)
					}
				}
			})
		}
	}
}
