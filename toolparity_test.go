package ktrace

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"k42trace/internal/diff"
)

// TestToolOutputParallelParity proves that the -j flag in the CLI tools
// is a pure speed knob: every tool-facing rendering — kmon's timeline
// and utilization, tracelist's listing, lockorder's report — is
// byte-identical whether the golden corpus traces are decoded with 1
// worker or 8. (truncated.ktr is excluded: a torn file needs the salvage
// path, which has its own parity coverage.)
func TestToolOutputParallelParity(t *testing.T) {
	// garbled.ktr cannot pass the strict reader (destroyed block magic);
	// it goes through the salvage opener, which also takes a worker count.
	traces := []struct {
		file    string
		salvage bool
	}{
		{"clean.ktr", false},
		{"crosscpu-io.ktr", false},
		{"garbled.ktr", true},
	}
	open := func(t *testing.T, file string, salvage bool, workers int) (*Trace, TraceMeta) {
		t.Helper()
		path := filepath.Join(corpusDir, file)
		if salvage {
			tr, rep, err := SalvageTraceFile(path, workers)
			if err != nil {
				t.Fatal(err)
			}
			return tr, rep.Meta
		}
		tr, meta, _, err := OpenTraceFileParallel(path, workers)
		if err != nil {
			t.Fatal(err)
		}
		return tr, meta
	}
	renders := []struct {
		name   string
		render func(tr *Trace, meta TraceMeta) string
	}{
		{"kmon-timeline", func(tr *Trace, meta TraceMeta) string {
			tl := tr.Timeline(100)
			var b strings.Builder
			b.WriteString(tl.ASCII())
			for cpu, u := range tl.Utilization() {
				fmt.Fprintf(&b, "cpu%-3d utilization %5.1f%%\n", cpu, u*100)
			}
			return b.String()
		}},
		{"tracelist", func(tr *Trace, meta TraceMeta) string {
			var b strings.Builder
			if _, err := tr.List(&b, ListOptions{Limit: 400}); err != nil {
				t.Fatal(err)
			}
			return b.String()
		}},
		{"lockorder", func(tr *Trace, meta TraceMeta) string {
			var b strings.Builder
			if err := tr.LockOrder().Format(&b); err != nil {
				t.Fatal(err)
			}
			return b.String()
		}},
	}
	for _, trace := range traces {
		for _, r := range renders {
			t.Run(trace.file+"/"+r.name, func(t *testing.T) {
				var base string
				for i, workers := range []int{1, 8} {
					tr, meta := open(t, trace.file, trace.salvage, workers)
					out := r.render(tr, meta)
					if out == "" {
						t.Fatalf("empty %s output for %s", r.name, trace.file)
					}
					if i == 0 {
						base = out
						continue
					}
					if out != base {
						t.Errorf("%s differs between -j1 and -j%d on %s:\n-j1:\n%s\n-j%d:\n%s",
							r.name, workers, trace.file, base, workers, out)
					}
				}
			})
		}
	}
}

// diffRenders runs the full tracediff pipeline over the coarse/tuned
// fixture pair at the given worker count and returns the report plus its
// three renderings (text, JSON, stacked HTML).
func diffRenders(t *testing.T, workers int) (rep *diff.Report, text, js, html string) {
	t.Helper()
	ta, _, _, err := OpenTraceFileParallel(filepath.Join(corpusDir, "coarse.ktr"), workers)
	if err != nil {
		t.Fatalf("fixture missing (run go test . -update): %v", err)
	}
	tb, _, _, err := OpenTraceFileParallel(filepath.Join(corpusDir, "tuned.ktr"), workers)
	if err != nil {
		t.Fatalf("fixture missing (run go test . -update): %v", err)
	}
	rep = diff.Diff(ta, tb, diff.Options{
		Workers: workers, LabelA: "coarse.ktr", LabelB: "tuned.ktr",
	})
	var tbuf, jbuf, hbuf strings.Builder
	if err := rep.Format(&tbuf, 10); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(&jbuf); err != nil {
		t.Fatal(err)
	}
	xa := ta.ExportTimelineRange(rep.A.Start, rep.A.End)
	xb := tb.ExportTimelineRange(rep.B.Start, rep.B.End)
	xa.Label, xb.Label = rep.A.Label, rep.B.Label
	if err := WriteTimelineHTML(&hbuf, "tracediff coarse.ktr vs tuned.ktr", xa, xb); err != nil {
		t.Fatal(err)
	}
	return rep, tbuf.String(), jbuf.String(), hbuf.String()
}

// TestTraceDiffToolParity pins the differential analyzer byte-for-byte:
// the coarse/tuned fixture pair must render identical text and JSON
// reports at -j1 and -j8, matching the checked-in goldens, the stacked
// HTML export must be deterministic, and the report must surface the
// planted coarse-kernel lock regression in its top rows.
func TestTraceDiffToolParity(t *testing.T) {
	rep, text1, json1, html1 := diffRenders(t, 1)
	_, text8, json8, html8 := diffRenders(t, 8)
	if text1 != text8 {
		t.Errorf("tracediff text differs between -j1 and -j8:\n-j1:\n%s\n-j8:\n%s", text1, text8)
	}
	if json1 != json8 {
		t.Errorf("tracediff JSON differs between -j1 and -j8")
	}
	if html1 != html8 {
		t.Errorf("tracediff HTML differs between -j1 and -j8")
	}

	for name, got := range map[string]string{
		"coarse-vs-tuned.diff.golden":     text1,
		"coarse-vs-tuned.diffjson.golden": json1,
	} {
		golden := filepath.Join(corpusDir, name)
		if *updateCorpus {
			if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("golden missing (run go test . -update): %v", err)
		}
		if got != string(want) {
			t.Errorf("tracediff output diverged from %s", golden)
		}
	}

	// The planted difference: the coarse kernel's global locks must show up
	// as the tuned run (B) spending less time lock-waiting.
	var lockRow *diff.ModeDelta
	for i := range rep.Modes {
		if rep.Modes[i].Mode == "lockwait" {
			lockRow = &rep.Modes[i]
		}
	}
	if lockRow == nil || lockRow.DeltaShare >= 0 {
		t.Errorf("lockwait occupancy did not drop coarse->tuned: %+v", lockRow)
	}
	if len(rep.Locks) == 0 || rep.Locks[0].DeltaWaitNs >= 0 {
		t.Errorf("top lock delta does not show the coarse regression: %+v", rep.Locks)
	}
	if rep.Divergence <= 0 {
		t.Errorf("coarse vs tuned divergence = %v, want > 0", rep.Divergence)
	}
	if rep.Align.Kind != "mask-epochs" {
		t.Errorf("fixture pair aligned by %q, want mask-epochs", rep.Align.Kind)
	}
}

// TestTraceDiffSelfZero is the self-diff invariant over the whole golden
// corpus: diffing any trace (clean, damaged, or truncated) against itself
// must report exactly zero — every delta field 0 and divergence 0.
func TestTraceDiffSelfZero(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join(corpusDir, "*.ktr"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no corpus traces in %s (run go test . -update): %v", corpusDir, err)
	}
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), ".ktr")
		t.Run(name, func(t *testing.T) {
			// Salvage-open handles the damaged corpus members too.
			tr, _, err := SalvageTraceFile(path, 4)
			if err != nil {
				t.Fatal(err)
			}
			rep := diff.Diff(tr, tr, diff.Options{Workers: 4})
			if rep.Divergence != 0 {
				t.Errorf("self-diff divergence = %v, want exactly 0", rep.Divergence)
			}
			if !rep.Zero() {
				var b strings.Builder
				rep.Format(&b, 5)
				t.Errorf("self-diff is not zero:\n%s", b.String())
			}
		})
	}
}

// TestTimelineHTMLSelfContained pins the HTML export's portability claims:
// rendering the same export twice is byte-identical, and the document
// embeds everything — no http:// or https:// references anywhere.
func TestTimelineHTMLSelfContained(t *testing.T) {
	tr, _, _, err := OpenTraceFileParallel(filepath.Join(corpusDir, "coarse.ktr"), 4)
	if err != nil {
		t.Fatalf("fixture missing (run go test . -update): %v", err)
	}
	x := tr.ExportTimeline()
	x.Label = "coarse.ktr"
	render := func() string {
		var b strings.Builder
		if err := WriteTimelineHTML(&b, "kmon coarse.ktr", x); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	h1, h2 := render(), render()
	if h1 != h2 {
		t.Error("HTML export is not deterministic across renders")
	}
	for _, sub := range []string{"http://", "https://"} {
		if strings.Contains(h1, sub) {
			t.Errorf("HTML export references the network: contains %q", sub)
		}
	}
	if !strings.Contains(h1, "const RUNS = ") || !strings.Contains(h1, "maskEpochs") {
		t.Error("HTML export does not embed the run data")
	}
}
