package ktrace

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"k42trace/internal/analysis"
	"k42trace/internal/faultinject"
	"k42trace/internal/sdet"
	"k42trace/internal/stream"
)

var updateCorpus = flag.Bool("update", false,
	"regenerate the golden trace corpus under testdata/corpus")

const corpusDir = "testdata/corpus"

// corpusWorkerCounts: the golden outputs must be byte-identical at both.
var corpusWorkerCounts = []int{1, 8}

// buildCorpusSources generates the two clean source traces: a standard
// SDET run with both samplers, and a threaded run whose processes migrate
// and perform IO across CPUs (threads log in parallel from whichever CPU
// schedules them, so per-process event streams interleave across blocks).
func buildCorpusSources(t testing.TB) (clean, crossIO []byte) {
	t.Helper()
	var a, b bytes.Buffer
	if _, err := sdet.Run(sdet.Config{CPUs: 4, Trace: sdet.TraceOn,
		Params: sdet.Params{ScriptsPerCPU: 8, CommandsPerScript: 10, Seed: 42},
		Sample: 10_000, HWCSample: 10_000}, &a); err != nil {
		t.Fatal(err)
	}
	if _, err := sdet.Run(sdet.Config{CPUs: 4, Trace: sdet.TraceOn,
		Params: sdet.Params{ScriptsPerCPU: 6, CommandsPerScript: 8, Threads: true, Seed: 7},
		Sample: 12_000, IRQPeriod: 40_000}, &b); err != nil {
		t.Fatal(err)
	}
	return a.Bytes(), b.Bytes()
}

// buildDiffPair generates the canonical tracediff fixture pair: the same
// SDET workload (same scripts, same seed, same samplers, same mid-run mask
// changes) on the coarse (global-lock) and tuned (per-CPU) kernels. The
// coarse kernel's lock contention is the planted regression tracediff must
// surface; the mask changes plant TRACE_CTRL_MASK_CHANGE epochs at the
// same virtual instants in both runs, which tracediff uses as alignment
// anchors.
func buildDiffPair(t testing.TB) (coarse, tuned []byte) {
	t.Helper()
	masks := []sdet.MaskChange{
		{AtNs: 800_000, Mask: ^uint64(0) &^ (MajorSample.Bit() | MajorAlloc.Bit())},
		{AtNs: 1_400_000, Mask: ^uint64(0)},
	}
	gen := func(tunedKernel bool) []byte {
		var b bytes.Buffer
		if _, err := sdet.Run(sdet.Config{CPUs: 8, Tuned: tunedKernel, Trace: sdet.TraceOn,
			Params:    sdet.Params{ScriptsPerCPU: 4, CommandsPerScript: 6, Seed: 11},
			Sample:    15_000,
			IRQPeriod: 50_000, MaskChanges: masks}, &b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	return gen(false), gen(true)
}

// garbleCorpus applies the corpus damage recipe to the clean trace and
// returns the damaged image plus the indices of the fully quarantined
// (magic-destroyed) blocks. The recipe is pure function of the input, so
// tests can re-derive what was damaged without side-channel files.
func garbleCorpus(t testing.TB, clean []byte) (data []byte, quarantined []int) {
	t.Helper()
	im, err := faultinject.OpenImage(clean, 77)
	if err != nil {
		t.Fatal(err)
	}
	n := im.NumBlocks()
	quarantined = []int{1, n / 2}
	for _, k := range quarantined {
		im.CorruptBlockMagic(k)
	}
	// Distinct blocks from the quarantined ones, and early in the file so
	// they land in full (not flush-time partial) blocks: these stay
	// readable but decode with skipped words where events were destroyed.
	im.FlipPayloadBits(2, 5)
	im.ZeroPayload(0, 40)
	return im.Bytes(), quarantined
}

func truncateCorpus(t testing.TB, clean []byte) []byte {
	t.Helper()
	im, err := faultinject.OpenImage(clean, 78)
	if err != nil {
		t.Fatal(err)
	}
	im.TruncateMidFinalBlock()
	return im.Bytes()
}

// analysisReports runs all five analyses at the given worker count and
// returns their formatted output keyed by report name.
func analysisReports(tr *Trace, w int) map[string]string {
	over := tr.OverviewParallel(w)
	var pids []uint64
	for _, row := range over {
		pids = append(pids, row.Pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	var tb strings.Builder
	for _, pid := range pids {
		fmt.Fprintf(&tb, "== pid %d ==\n%s\n", pid, tr.TimeBreakParallel(pid, w).String())
	}
	return map[string]string{
		"lock":      tr.LockStatParallel(w).String(),
		"profile":   tr.ProfileParallel(^uint64(0), w).String(),
		"overview":  analysis.OverviewString(over),
		"timebreak": tb.String(),
		"mem":       tr.MemProfileParallel(w).String(),
	}
}

// TestGoldenCorpus pins the whole consumer stack byte-for-byte: every
// corpus trace (clean, garbled, truncated, cross-CPU IO) is salvaged and
// analyzed at 1 and 8 workers, the two runs must agree exactly, and the
// result must match the checked-in .golden files. Run with -update to
// regenerate corpus and goldens together.
func TestGoldenCorpus(t *testing.T) {
	if *updateCorpus {
		if err := os.MkdirAll(corpusDir, 0o755); err != nil {
			t.Fatal(err)
		}
		clean, crossIO := buildCorpusSources(t)
		garbled, _ := garbleCorpus(t, clean)
		coarse, tuned := buildDiffPair(t)
		for name, data := range map[string][]byte{
			"clean.ktr":       clean,
			"crosscpu-io.ktr": crossIO,
			"garbled.ktr":     garbled,
			"truncated.ktr":   truncateCorpus(t, clean),
			"coarse.ktr":      coarse,
			"tuned.ktr":       tuned,
		} {
			if err := os.WriteFile(filepath.Join(corpusDir, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	paths, err := filepath.Glob(filepath.Join(corpusDir, "*.ktr"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no corpus traces in %s (run go test . -update): %v", corpusDir, err)
	}
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), ".ktr")
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var base map[string]string
			var baseSalvage string
			for i, w := range corpusWorkerCounts {
				evs, rep, err := Salvage(bytes.NewReader(data), int64(len(data)), w)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				tr := BuildTrace(evs, rep.Meta.ClockHz, DefaultRegistry())
				reports := analysisReports(tr, w)
				reports["salvage"] = rep.String()
				if i == 0 {
					base, baseSalvage = reports, rep.String()
					continue
				}
				if rep.String() != baseSalvage {
					t.Errorf("workers=%d: salvage report differs from workers=%d",
						w, corpusWorkerCounts[0])
				}
				for k, v := range reports {
					if v != base[k] {
						t.Errorf("workers=%d: %s report differs from workers=%d",
							w, k, corpusWorkerCounts[0])
					}
				}
			}
			for k, v := range base {
				golden := filepath.Join(corpusDir, name+"."+k+".golden")
				if *updateCorpus {
					if err := os.WriteFile(golden, []byte(v), 0o644); err != nil {
						t.Fatal(err)
					}
					continue
				}
				want, err := os.ReadFile(golden)
				if err != nil {
					t.Fatalf("golden missing (run go test . -update): %v", err)
				}
				if v != string(want) {
					t.Errorf("%s output diverged from %s", k, golden)
				}
			}
		})
	}
}

// TestCorpusSalvageExactCounts proves the acceptance claim with block
// arithmetic: destroy exactly three block magics in the clean corpus
// trace, and salvage must quarantine exactly those blocks, lose exactly
// their events, and recover every event outside them bit-for-bit.
func TestCorpusSalvageExactCounts(t *testing.T) {
	clean, err := os.ReadFile(filepath.Join(corpusDir, "clean.ktr"))
	if err != nil {
		t.Fatalf("corpus missing (run go test . -update): %v", err)
	}
	rd, err := stream.NewReader(bytes.NewReader(clean), int64(len(clean)))
	if err != nil {
		t.Fatal(err)
	}
	cleanEvs, _, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	n := rd.NumBlocks()
	if n < 8 {
		t.Fatalf("corpus trace has %d blocks; the recipe needs >= 8 distinct targets", n)
	}
	qs := []int{1, n / 2, n - 2}
	im, err := faultinject.OpenImage(clean, 99)
	if err != nil {
		t.Fatal(err)
	}
	lost := 0
	quarantined := map[int]bool{}
	for _, k := range qs {
		im.CorruptBlockMagic(k)
		evs, _, err := rd.Events(k)
		if err != nil {
			t.Fatal(err)
		}
		lost += len(evs)
		quarantined[k] = true
	}
	if lost == 0 {
		t.Fatal("chosen blocks hold no events; corpus too small")
	}
	data := im.Bytes()
	evs, rep, err := Salvage(bytes.NewReader(data), int64(len(data)), 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BlocksSkipped != len(qs) {
		t.Fatalf("quarantined %d blocks, want exactly %d:\n%s", rep.BlocksSkipped, len(qs), rep)
	}
	for _, bad := range rep.Skipped {
		if !quarantined[bad.Block] {
			t.Errorf("block %d quarantined but never damaged (%s)", bad.Block, bad.Cause)
		}
	}
	if got := len(cleanEvs) - len(evs); got != lost {
		t.Errorf("lost %d events, the %d quarantined blocks held %d", got, len(qs), lost)
	}
	// Every surviving event must match the clean trace restricted to the
	// surviving blocks — same bytes, same order.
	var out bytes.Buffer
	wr, err := stream.NewWriter(&out, rd.Meta())
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		if quarantined[k] {
			continue
		}
		h, words, err := rd.Block(k)
		if err != nil {
			t.Fatal(err)
		}
		if err := wr.WriteBlock(h, words); err != nil {
			t.Fatal(err)
		}
	}
	srd, err := stream.NewReader(bytes.NewReader(out.Bytes()), int64(out.Len()))
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := srd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != len(want) {
		t.Fatalf("salvaged %d events, survivor blocks hold %d", len(evs), len(want))
	}
	for i := range evs {
		if evs[i].Header != want[i].Header || evs[i].Time != want[i].Time ||
			evs[i].CPU != want[i].CPU {
			t.Fatalf("event %d differs from survivor baseline", i)
		}
	}
}
