#!/usr/bin/env bash
# End-to-end smoke of the shared-memory cross-process path: boot ktraced
# on a tmpfs segment, attach real shmlog client processes, SIGKILL one
# with an uncommitted reservation mid-run, inspect the live segment with
# tracecheck -shm, SIGTERM-drain, and assert exact loss accounting on the
# spill with tracecheck -salvage: one anomalous block, the dead
# reservation's words skipped, and nothing else lost.
set -euo pipefail

cd "$(dirname "$0")/.."
BIN="$(mktemp -d)"
WORK="$(mktemp -d)"
SEG=""
KTRACED_PID=""
cleanup() {
    [ -n "$KTRACED_PID" ] && kill "$KTRACED_PID" 2>/dev/null || true
    [ -n "$SEG" ] && rm -f "$SEG"
    rm -rf "$BIN" "$WORK"
}
trap cleanup EXIT

# tmpfs where available (the deployment the paper assumes); plain disk
# works too — mmap is mmap.
if [ -d /dev/shm ] && [ -w /dev/shm ]; then
    SEG="/dev/shm/k42smoke.$$.seg"
else
    SEG="$WORK/k42smoke.seg"
fi
SPILL="$WORK/drained.ktr"
PAYLOAD=3
HOLE=$((PAYLOAD + 1)) # header word + payload

go build -o "$BIN" ./cmd/ktraced ./cmd/shmlog ./cmd/tracecheck

"$BIN/ktraced" -seg "$SEG" -cpus 2 -spill "$SPILL" >"$WORK/ktraced.out" 2>&1 &
KTRACED_PID=$!

# Wait until the daemon publishes the segment as ready.
up=""
for _ in $(seq 1 50); do
    if "$BIN/tracecheck" -shm "$SEG" 2>/dev/null | grep -q 'state: ready'; then up=1; break; fi
    sleep 0.2
done
[ -n "$up" ] || { echo "shm_smoke: segment never became ready" >&2; cat "$WORK/ktraced.out" >&2; exit 1; }

# Client 1: a healthy producer hammering both CPU slots.
"$BIN/shmlog" -seg "$SEG" -n 20000 >"$WORK/client1.out" &
C1=$!

# Client 2: reserves $PAYLOAD payload words, never commits, and is
# SIGKILLed — a real process dying with space reserved, the §3.1 failure.
"$BIN/shmlog" -seg "$SEG" -hang -payload "$PAYLOAD" >"$WORK/hang.out" &
C2=$!
hung=""
for _ in $(seq 1 50); do
    if grep -q "hung with $HOLE uncommitted words" "$WORK/hang.out" 2>/dev/null; then hung=1; break; fi
    sleep 0.2
done
[ -n "$hung" ] || { echo "shm_smoke: hang client never reserved" >&2; cat "$WORK/hang.out" >&2; exit 1; }

# Live inspection while the hang client holds its reservation: it must
# show up in the client table with its OS pid and a raised in-flight
# count. (The healthy client may already have finished and detached —
# its slot is recycled, so only the hung one is guaranteed present.)
"$BIN/tracecheck" -shm "$SEG" >"$WORK/inspect_live.txt"
grep -Eq "slot [0-9]+: pid $C2," "$WORK/inspect_live.txt" \
    || { echo "shm_smoke: live inspect missed the hung client" >&2; cat "$WORK/inspect_live.txt" >&2; exit 1; }
grep -Eq 'clients: [0-9]+ attached' "$WORK/inspect_live.txt" \
    || { echo "shm_smoke: live inspect shows no client table" >&2; cat "$WORK/inspect_live.txt" >&2; exit 1; }

kill -9 "$C2"
wait "$C2" 2>/dev/null || true

# The daemon writes the dead client off by pid liveness: poll the live
# segment until only the healthy client (or none, if it finished) holds a
# slot.
reaped=""
for _ in $(seq 1 50); do
    "$BIN/tracecheck" -shm "$SEG" >"$WORK/inspect_reap.txt"
    if ! grep -Eq "pid $C2," "$WORK/inspect_reap.txt"; then reaped=1; break; fi
    sleep 0.2
done
[ -n "$reaped" ] || { echo "shm_smoke: dead client never reaped" >&2; cat "$WORK/inspect_reap.txt" >&2; exit 1; }

wait "$C1"
grep -q 'logged 20000 events' "$WORK/client1.out" \
    || { echo "shm_smoke: healthy client lost events" >&2; cat "$WORK/client1.out" >&2; exit 1; }

# Client 3 attaches *after* the kill: the ring must still flow.
"$BIN/shmlog" -seg "$SEG" -workload -cpu 1 -pid 202 -n 500 >"$WORK/client3.out"
grep -q 'logged 1700 events' "$WORK/client3.out" \
    || { echo "shm_smoke: post-kill workload client lost events" >&2; cat "$WORK/client3.out" >&2; exit 1; }

# Graceful drain. ktraced exits 1 on purpose: the kill left exactly one
# anomalous block and the daemon reports it.
kill -TERM "$KTRACED_PID"
rc=0; wait "$KTRACED_PID" || rc=$?
KTRACED_PID=""
[ "$rc" -eq 1 ] || { echo "shm_smoke: ktraced exit $rc, want 1 (anomaly flagged)" >&2; cat "$WORK/ktraced.out" >&2; exit 1; }
grep -q '(1 anomalous)' "$WORK/ktraced.out" \
    || { echo "shm_smoke: want exactly 1 anomalous block" >&2; cat "$WORK/ktraced.out" >&2; exit 1; }
grep -q '1 dead clients reaped' "$WORK/ktraced.out" \
    || { echo "shm_smoke: want exactly 1 reaped client" >&2; cat "$WORK/ktraced.out" >&2; exit 1; }

# Exact loss accounting on the spill: the salvager must quarantine
# nothing, lose no blocks, and skip exactly the dead reservation's words.
[ -s "$SPILL" ] || { echo "shm_smoke: empty spill file" >&2; exit 1; }
rc=0; "$BIN/tracecheck" -salvage "$SPILL" >"$WORK/salvage.txt" || rc=$?
[ "$rc" -eq 1 ] || { echo "shm_smoke: salvage exit $rc, want 1 (loss detected)" >&2; cat "$WORK/salvage.txt" >&2; exit 1; }
grep -Eq 'blocks: [0-9]+ good, 0 quarantined, 0 duplicates dropped, 0 reordered, 0 lost' "$WORK/salvage.txt" \
    || { echo "shm_smoke: salvage lost whole blocks on a kill-only trace" >&2; cat "$WORK/salvage.txt" >&2; exit 1; }
grep -q "$HOLE garbled words skipped" "$WORK/salvage.txt" \
    || { echo "shm_smoke: want exactly $HOLE skipped words" >&2; cat "$WORK/salvage.txt" >&2; exit 1; }

echo "shm_smoke: OK ($(wc -c <"$SPILL") byte spill, 1 anomalous block, exactly $HOLE words lost)"
