#!/usr/bin/env bash
# End-to-end smoke of the differential analyzer and the HTML timeline
# export: generate a coarse and a tuned run of the identical SDET workload
# (same seed, same samplers, same mid-run mask changes), then prove that
#   1. tracediff aligns them on the planted mask epochs and surfaces the
#      coarse kernel's lock regression at the top of the report,
#   2. diffing a trace against itself is exactly zero (gated in the
#      strictest possible way: -max-divergence 0 must pass),
#   3. the -max-divergence CI gate exits 3 on the real regression,
#   4. the JSON report parses and agrees with the text on the headline,
#   5. the HTML timeline exports (kmon single-run and tracediff stacked)
#      are byte-identical across renders and reference no network.
set -euo pipefail

cd "$(dirname "$0")/.."
BIN="$(mktemp -d)"
WORK="$(mktemp -d)"
cleanup() { rm -rf "$BIN" "$WORK"; }
trap cleanup EXIT

go build -o "$BIN" ./cmd/sdet ./cmd/tracediff ./cmd/kmon

# The canonical fixture recipe (testdata/corpus coarse/tuned pair): 8 CPUs,
# both samplers, timer IRQs, and two mid-run mask changes that plant
# TRACE_CTRL_MASK_CHANGE epochs at the same virtual instants in both runs.
GEN="-cpus 8 -scripts 4 -cmds 6 -seed 11 -sample 15000 -irq 50000
     -mask-at 800000=ctrl,mem,proc,sched,lock,io,ipc,exception,user,syscall
     -mask-at 1400000=all"
# shellcheck disable=SC2086
"$BIN/sdet" $GEN -config coarse -o "$WORK/coarse.ktr" >/dev/null
# shellcheck disable=SC2086
"$BIN/sdet" $GEN -config tuned -o "$WORK/tuned.ktr" >/dev/null

# --- 1. the diff surfaces the planted regression -----------------------
"$BIN/tracediff" "$WORK/coarse.ktr" "$WORK/tuned.ktr" >"$WORK/report.txt"
grep -q '^  alignment mask-epochs' "$WORK/report.txt" \
    || { echo "diff_smoke: runs not aligned on mask epochs" >&2; exit 1; }
# lockwait must head the mode table (biggest |delta%|) and must drop B-A.
grep -q '^lockwait .*-' "$WORK/report.txt" \
    || { echo "diff_smoke: lockwait regression not surfaced" >&2; exit 1; }
DIV=$(sed -n 's/^divergence \([0-9.]*\).*/\1/p' "$WORK/report.txt")
[ -n "$DIV" ] && awk "BEGIN{exit !($DIV > 0)}" \
    || { echo "diff_smoke: divergence not positive ($DIV)" >&2; exit 1; }

# --- 2. self-diff is exactly zero, gated at threshold zero -------------
"$BIN/tracediff" -max-divergence 0 "$WORK/coarse.ktr" "$WORK/coarse.ktr" >"$WORK/self.txt"
grep -q '^divergence 0\.000000' "$WORK/self.txt" \
    || { echo "diff_smoke: self-diff divergence nonzero" >&2; exit 1; }

# --- 3. the CI gate trips on the real regression -----------------------
set +e
"$BIN/tracediff" -max-divergence 0.01 "$WORK/coarse.ktr" "$WORK/tuned.ktr" >/dev/null 2>&1
RC=$?
set -e
[ "$RC" -eq 3 ] || { echo "diff_smoke: threshold gate exited $RC, want 3" >&2; exit 1; }

# --- 4. JSON agrees with the text report -------------------------------
"$BIN/tracediff" -json "$WORK/coarse.ktr" "$WORK/tuned.ktr" >"$WORK/report.json"
grep -q '"kind": "mask-epochs"' "$WORK/report.json" \
    || { echo "diff_smoke: JSON missing alignment kind" >&2; exit 1; }
grep -q '"mode": "lockwait"' "$WORK/report.json" \
    || { echo "diff_smoke: JSON missing lockwait row" >&2; exit 1; }

# --- 5. HTML exports: deterministic, self-contained, epoch-aware -------
"$BIN/tracediff" -html "$WORK/stack1.html" "$WORK/coarse.ktr" "$WORK/tuned.ktr" >/dev/null 2>&1
"$BIN/tracediff" -html "$WORK/stack2.html" "$WORK/coarse.ktr" "$WORK/tuned.ktr" >/dev/null 2>&1
cmp -s "$WORK/stack1.html" "$WORK/stack2.html" \
    || { echo "diff_smoke: tracediff HTML not deterministic" >&2; exit 1; }
"$BIN/kmon" -html "$WORK/mon1.html" -svg "$WORK/mon.svg" "$WORK/coarse.ktr" >/dev/null
"$BIN/kmon" -html "$WORK/mon2.html" "$WORK/coarse.ktr" >/dev/null
cmp -s "$WORK/mon1.html" "$WORK/mon2.html" \
    || { echo "diff_smoke: kmon HTML not deterministic" >&2; exit 1; }
for f in "$WORK/stack1.html" "$WORK/mon1.html"; do
    if grep -qE 'https?://' "$f"; then
        echo "diff_smoke: $f references the network" >&2; exit 1
    fi
    grep -q 'maskEpochs' "$f" \
        || { echo "diff_smoke: $f missing mask-epoch data" >&2; exit 1; }
done
# The satellite: kmon's SVG draws the mask epochs as dashed lines too.
grep -q 'stroke-dasharray' "$WORK/mon.svg" \
    || { echo "diff_smoke: SVG missing epoch lines" >&2; exit 1; }

echo "diff_smoke: OK (divergence $DIV, gate exit 3, HTML deterministic + offline)"
