#!/usr/bin/env bash
# End-to-end smoke of the collector federation: boot traceaggd, federate
# three tracecolld shards under it, stream ring-resolved tracerelay
# producers through the tree, fan a mask down from the aggregator,
# SIGKILL one shard and watch the ring expire it while producers rehash,
# then drain and validate every spill with tracecheck.
set -euo pipefail

cd "$(dirname "$0")/.."
BIN="$(mktemp -d)"
WORK="$(mktemp -d)"
AGG_PID=""
C0_PID=""
C1_PID=""
C2_PID=""
cleanup() {
    for p in "$AGG_PID" "$C0_PID" "$C1_PID" "$C2_PID"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
    done
    rm -rf "$BIN" "$WORK"
}
trap cleanup EXIT

AGG_PORT="${FED_SMOKE_PORT:-18052}"
AGG_HTTP="${FED_SMOKE_HTTP:-18053}"
AGG="http://127.0.0.1:$AGG_HTTP"
FLEET="$WORK/fleet.ktr"

go build -o "$BIN" ./cmd/traceaggd ./cmd/tracecolld ./cmd/tracerelay ./cmd/tracecheck ./cmd/tracelist

"$BIN/traceaggd" -listen "127.0.0.1:$AGG_PORT" -http "127.0.0.1:$AGG_HTTP" \
    -spill "$FLEET" -member-ttl 2s &
AGG_PID=$!

up=""
for _ in $(seq 1 50); do
    if curl -fsS "$AGG/healthz" >/dev/null 2>&1; then up=1; break; fi
    sleep 0.2
done
[ -n "$up" ] || { echo "fed_smoke: aggregator HTTP never came up" >&2; exit 1; }

# Three shards, each heartbeating fast so the smoke stays short.
start_shard() { # name relay_port http_port
    "$BIN/tracecolld" -listen "127.0.0.1:$2" -http "127.0.0.1:$3" \
        -spill "$WORK/$1.ktr" -up "127.0.0.1:$AGG_PORT" -agg-http "$AGG" \
        -name "$1" -heartbeat 250ms &
}
start_shard c0 18042 18043; C0_PID=$!
start_shard c1 18044 18045; C1_PID=$!
start_shard c2 18046 18047; C2_PID=$!

# The ring must converge to all three members before producers resolve.
joined=0
for _ in $(seq 1 50); do
    joined=$(curl -fsS "$AGG/fed/ring" | grep -co '"127\.0\.0\.1:1804[0-9]"' || true)
    [ "$joined" -eq 3 ] && break
    sleep 0.2
done
[ "$joined" -eq 3 ] || { echo "fed_smoke: ring never reached 3 members (saw $joined)" >&2; exit 1; }

# Six finite producers, each resolving its owner shard through the ring.
PPIDS=()
for i in 0 1 2 3 4 5; do
    "$BIN/tracerelay" -fed "$AGG" -key "web-$i" -cpus 2 >"$WORK/web-$i.out" &
    PPIDS+=($!)
done
wait "${PPIDS[@]}"
grep -q '^reliable: [1-9]' "$WORK/web-0.out" \
    || { echo "fed_smoke: producer relayed no blocks" >&2; cat "$WORK/web-0.out" >&2; exit 1; }

# Heartbeats carry shard counters upward; the federated member view must
# show ingested blocks.
fed=""
for _ in $(seq 1 50); do
    if curl -fsS "$AGG/fed/overview" | grep -q '"blocks": [1-9]'; then fed=1; break; fi
    sleep 0.2
done
[ -n "$fed" ] || { echo "fed_smoke: no shard reported blocks in /fed/overview" >&2; exit 1; }
# The shards' uplinks are the aggregator's producers: the mirror must be live.
curl -fsS "$AGG/metrics" | grep -q '^tracecolld_blocks_received_total' \
    || { echo "fed_smoke: aggregator mirror saw no uplink blocks" >&2; exit 1; }

# --- Mask fan-down through the whole tree ---
# A long-lived producer somewhere in the fleet; narrowing the mask at the
# AGGREGATOR must reach it two hops down and stop the disabled majors.
"$BIN/tracerelay" -fed "$AGG" -key ctl-1 -cpus 2 -loadgen -duration 8s -rate 20000 \
    -remote-control -attempts 40 >"$WORK/loadgen.out" &
P_CTL=$!
sleep 1
curl -fsS -X POST "$AGG/live/mask" -d mask=ctrl,test >"$WORK/mask.json"
grep -q '"desired_mask": "0x2001"' "$WORK/mask.json"
applied=""
for _ in $(seq 1 50); do
    for h in 18043 18045 18047; do
        if curl -fsS "http://127.0.0.1:$h/live/mask" 2>/dev/null | grep -q '"applied_mask": "0x2001"'; then
            applied=1
        fi
    done
    [ -n "$applied" ] && break
    sleep 0.2
done
[ -n "$applied" ] || { echo "fed_smoke: no shard saw the fanned-down mask applied" >&2; exit 1; }

# --- Member loss: SIGKILL a shard, the ring must expire it ---
kill -9 "$C2_PID"
wait "$C2_PID" 2>/dev/null || true
C2_PID=""
gone=""
for _ in $(seq 1 50); do
    if ! curl -fsS "$AGG/fed/ring" | grep -q '"127.0.0.1:18046"'; then gone=1; break; fi
    sleep 0.2
done
[ -n "$gone" ] || { echo "fed_smoke: killed shard never expired off the ring" >&2; exit 1; }
curl -fsS "$AGG/fed/members" | grep -q '"state": "expired"' \
    || { echo "fed_smoke: killed shard not marked expired" >&2; exit 1; }

# A producer arriving after the loss resolves onto a survivor and succeeds.
"$BIN/tracerelay" -fed "$AGG" -key web-9 -cpus 2 >"$WORK/web-9.out"
grep -q '^reliable: [1-9].* 0 dropped$' "$WORK/web-9.out" \
    || { echo "fed_smoke: post-kill producer lost blocks" >&2; cat "$WORK/web-9.out" >&2; exit 1; }

wait "$P_CTL"
# The narrowed mask must have rejected some logging attempts at the source.
attempts=$(sed -n 's/^loadgen: \([0-9]*\) logging attempts.*/\1/p' "$WORK/loadgen.out")
logged=$(sed -n 's/^loadgen: [0-9]* logging attempts, \([0-9]*\) events logged.*/\1/p' "$WORK/loadgen.out")
[ -n "$attempts" ] && [ -n "$logged" ] && [ "$logged" -lt "$attempts" ] \
    || { echo "fed_smoke: fanned-down mask never throttled the producer" >&2; cat "$WORK/loadgen.out" >&2; exit 1; }

# --- Drain: SIGTERM the survivors, then the aggregator ---
kill -TERM "$C0_PID" "$C1_PID"
wait "$C0_PID" "$C1_PID"
C0_PID=""; C1_PID=""
# The leaving heartbeat carries each shard's final overview; the merged
# federated overview must contain per-process rows.
curl -fsS "$AGG/fed/overview" >"$WORK/fed_overview.json"
grep -q '"Pid"' "$WORK/fed_overview.json" \
    || { echo "fed_smoke: merged federated overview is empty" >&2; exit 1; }
kill -TERM "$AGG_PID"
wait "$AGG_PID"
AGG_PID=""

# Survivor spills and the aggregator's mirror spill must be well-formed.
# (c2 died by SIGKILL, so its spill may end mid-block; a shard that never
# owned a key leaves an empty spill — both are skipped, not failures.)
for s in c0 c1; do
    if [ -s "$WORK/$s.ktr" ]; then "$BIN/tracecheck" "$WORK/$s.ktr"; fi
done
[ -s "$FLEET" ] || { echo "fed_smoke: empty fleet spill" >&2; exit 1; }
"$BIN/tracecheck" "$FLEET"
# The fan-down must be recorded in-band all the way up in the mirror.
"$BIN/tracelist" -control "$FLEET" >"$WORK/listing.txt"
grep -q TRACE_CTRL_MASK_CHANGE "$WORK/listing.txt" \
    || { echo "fed_smoke: no CtrlMaskChange markers in the fleet spill" >&2; exit 1; }
echo "fed_smoke: OK (3-shard federation, mask fan-down, shard loss + rehash, $(wc -c <"$FLEET") byte fleet spill validated)"
