#!/usr/bin/env bash
# End-to-end smoke of the live-monitoring pipeline: boot tracecolld, stream
# two concurrent tracerelay producers into it, poke every HTTP endpoint,
# SIGTERM-drain, and validate the spilled trace file with tracecheck.
set -euo pipefail

cd "$(dirname "$0")/.."
BIN="$(mktemp -d)"
WORK="$(mktemp -d)"
COLLD_PID=""
cleanup() {
    [ -n "$COLLD_PID" ] && kill "$COLLD_PID" 2>/dev/null || true
    rm -rf "$BIN" "$WORK"
}
trap cleanup EXIT

PORT="${LIVE_SMOKE_PORT:-17042}"
HTTP="${LIVE_SMOKE_HTTP:-17043}"
SPILL="$WORK/drained.ktr"

go build -o "$BIN" ./cmd/tracecolld ./cmd/tracerelay ./cmd/tracecheck ./cmd/tracelist

"$BIN/tracecolld" -listen "127.0.0.1:$PORT" -http "127.0.0.1:$HTTP" -spill "$SPILL" &
COLLD_PID=$!

# Wait for the HTTP surface to come up.
up=""
for _ in $(seq 1 50); do
    if curl -fsS "http://127.0.0.1:$HTTP/healthz" >/dev/null 2>&1; then up=1; break; fi
    sleep 0.2
done
[ -n "$up" ] || { echo "live_smoke: collector HTTP never came up" >&2; exit 1; }
curl -fsS "http://127.0.0.1:$HTTP/healthz" | grep -q ok

# Two concurrent reliable producers.
"$BIN/tracerelay" -send "127.0.0.1:$PORT" -cpus 2 -reconnect &
P1=$!
"$BIN/tracerelay" -send "127.0.0.1:$PORT" -cpus 2 -reconnect &
P2=$!
wait "$P1" "$P2"

# Ingest is asynchronous: poll until both producers' block counters appear.
seen=0
for _ in $(seq 1 50); do
    seen=$(curl -fsS "http://127.0.0.1:$HTTP/metrics" | grep -c '^tracecolld_blocks_received_total' || true)
    [ "$seen" -ge 2 ] && break
    sleep 0.2
done
[ "$seen" -ge 2 ] || { echo "live_smoke: expected 2 producers in /metrics, saw $seen" >&2; exit 1; }
curl -fsS "http://127.0.0.1:$HTTP/metrics" | grep -q '^tracecolld_events_total'
curl -fsS "http://127.0.0.1:$HTTP/live/overview" | grep -q '"producers"'
curl -fsS "http://127.0.0.1:$HTTP/live/windows" >/dev/null

# --- Dynamic control plane: retune live producers from the collector ---
# A long-lived producer that keeps attempting MEM and SCHED events;
# narrowing the mask to CTRL+TEST (0x2001) mid-run must stop those majors
# at the source, and the producer reports the applied mask back in-band.
"$BIN/tracerelay" -send "127.0.0.1:$PORT" -cpus 2 -loadgen -duration 8s -rate 20000 -remote-control >"$WORK/loadgen1.out" &
P3=$!
sleep 1
curl -fsS -X POST "http://127.0.0.1:$HTTP/live/mask" -d mask=ctrl,test >"$WORK/mask.json"
grep -q '"desired_mask": "0x2001"' "$WORK/mask.json"
applied=""
for _ in $(seq 1 50); do
    curl -fsS "http://127.0.0.1:$HTTP/live/mask" >"$WORK/mask.json"
    if grep -q '"applied_mask": "0x2001"' "$WORK/mask.json"; then applied=1; break; fi
    sleep 0.2
done
[ -n "$applied" ] || { echo "live_smoke: producer never applied the pushed mask" >&2; exit 1; }

# A producer that connects *after* the POST gets the pending mask replayed
# on admission.
"$BIN/tracerelay" -send "127.0.0.1:$PORT" -cpus 2 -loadgen -duration 2s -rate 20000 -remote-control >"$WORK/loadgen2.out" &
P4=$!
wait "$P4"
grep -Eq 'remote-control: [0-9]+ control frames, [1-9][0-9]* mask applies' "$WORK/loadgen2.out" \
    || { echo "live_smoke: late producer never applied the replayed mask" >&2; cat "$WORK/loadgen2.out" >&2; exit 1; }

wait "$P3"
# The narrowed mask must have rejected some attempts (MEM/SCHED stopped).
attempts=$(sed -n 's/^loadgen: \([0-9]*\) logging attempts.*/\1/p' "$WORK/loadgen1.out")
logged=$(sed -n 's/^loadgen: [0-9]* logging attempts, \([0-9]*\) events logged.*/\1/p' "$WORK/loadgen1.out")
[ -n "$attempts" ] && [ -n "$logged" ] && [ "$logged" -lt "$attempts" ] \
    || { echo "live_smoke: disabled majors kept logging ($logged of $attempts)" >&2; cat "$WORK/loadgen1.out" >&2; exit 1; }
curl -fsS "http://127.0.0.1:$HTTP/metrics" >"$WORK/metrics.txt"
grep -q '^tracecolld_mask_updates_sent_total [1-9]' "$WORK/metrics.txt"

# Graceful drain: SIGTERM must leave a well-formed spill behind.
kill -TERM "$COLLD_PID"
wait "$COLLD_PID"
COLLD_PID=""

[ -s "$SPILL" ] || { echo "live_smoke: empty spill file" >&2; exit 1; }
"$BIN/tracecheck" "$SPILL"
# The mask flips must be recorded in-band in the drained spill. (Listing
# goes to a file: grep -q would SIGPIPE tracelist and trip pipefail.)
"$BIN/tracelist" -control "$SPILL" >"$WORK/listing.txt"
grep -q TRACE_CTRL_MASK_CHANGE "$WORK/listing.txt" \
    || { echo "live_smoke: no CtrlMaskChange markers in the spill" >&2; exit 1; }
echo "live_smoke: OK ($(wc -c <"$SPILL") byte spill validated, mask markers present)"
