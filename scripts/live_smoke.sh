#!/usr/bin/env bash
# End-to-end smoke of the live-monitoring pipeline: boot tracecolld, stream
# two concurrent tracerelay producers into it, poke every HTTP endpoint,
# SIGTERM-drain, and validate the spilled trace file with tracecheck.
set -euo pipefail

cd "$(dirname "$0")/.."
BIN="$(mktemp -d)"
WORK="$(mktemp -d)"
COLLD_PID=""
cleanup() {
    [ -n "$COLLD_PID" ] && kill "$COLLD_PID" 2>/dev/null || true
    rm -rf "$BIN" "$WORK"
}
trap cleanup EXIT

PORT="${LIVE_SMOKE_PORT:-17042}"
HTTP="${LIVE_SMOKE_HTTP:-17043}"
SPILL="$WORK/drained.ktr"

go build -o "$BIN" ./cmd/tracecolld ./cmd/tracerelay ./cmd/tracecheck

"$BIN/tracecolld" -listen "127.0.0.1:$PORT" -http "127.0.0.1:$HTTP" -spill "$SPILL" &
COLLD_PID=$!

# Wait for the HTTP surface to come up.
up=""
for _ in $(seq 1 50); do
    if curl -fsS "http://127.0.0.1:$HTTP/healthz" >/dev/null 2>&1; then up=1; break; fi
    sleep 0.2
done
[ -n "$up" ] || { echo "live_smoke: collector HTTP never came up" >&2; exit 1; }
curl -fsS "http://127.0.0.1:$HTTP/healthz" | grep -q ok

# Two concurrent reliable producers.
"$BIN/tracerelay" -send "127.0.0.1:$PORT" -cpus 2 -reconnect &
P1=$!
"$BIN/tracerelay" -send "127.0.0.1:$PORT" -cpus 2 -reconnect &
P2=$!
wait "$P1" "$P2"

# Ingest is asynchronous: poll until both producers' block counters appear.
seen=0
for _ in $(seq 1 50); do
    seen=$(curl -fsS "http://127.0.0.1:$HTTP/metrics" | grep -c '^tracecolld_blocks_received_total' || true)
    [ "$seen" -ge 2 ] && break
    sleep 0.2
done
[ "$seen" -ge 2 ] || { echo "live_smoke: expected 2 producers in /metrics, saw $seen" >&2; exit 1; }
curl -fsS "http://127.0.0.1:$HTTP/metrics" | grep -q '^tracecolld_events_total'
curl -fsS "http://127.0.0.1:$HTTP/live/overview" | grep -q '"producers"'
curl -fsS "http://127.0.0.1:$HTTP/live/windows" >/dev/null

# Graceful drain: SIGTERM must leave a well-formed spill behind.
kill -TERM "$COLLD_PID"
wait "$COLLD_PID"
COLLD_PID=""

[ -s "$SPILL" ] || { echo "live_smoke: empty spill file" >&2; exit 1; }
"$BIN/tracecheck" "$SPILL"
echo "live_smoke: OK ($(wc -c <"$SPILL") byte spill validated)"
