#!/usr/bin/env bash
# End-to-end smoke of the trace store: boot tracestored, ingest spills over
# HTTP and through the watch directory, query events and aggregations, walk
# a paginated listing against the unpaginated one, prove segment-cache hits
# and admission-control 429s, compact (event-conserving), GC against a byte
# budget, validate every stored segment with tracecheck, and prove the
# tracecolld -store handoff.
set -euo pipefail

cd "$(dirname "$0")/.."
BIN="$(mktemp -d)"
WORK="$(mktemp -d)"
STORED_PID=""
COLLD_PID=""
cleanup() {
    [ -n "$STORED_PID" ] && kill "$STORED_PID" 2>/dev/null || true
    [ -n "$COLLD_PID" ] && kill "$COLLD_PID" 2>/dev/null || true
    rm -rf "$BIN" "$WORK"
}
trap cleanup EXIT

HTTP="${STORE_SMOKE_HTTP:-17045}"
CPORT="${STORE_SMOKE_COLLD:-17046}"
CHTTP="${STORE_SMOKE_COLLD_HTTP:-17047}"
BASE="http://127.0.0.1:$HTTP"
ROOT="$WORK/store"
SPOOL="$WORK/spool"

go build -o "$BIN" ./cmd/tracestored ./cmd/tracecolld ./cmd/tracerelay ./cmd/tracecheck ./cmd/sdet

# A deterministic spill with enough blocks to split into many segments.
"$BIN/sdet" -cpus 4 -scripts 12 -cmds 12 -sample 10000 -o "$WORK/spill.ktr" >/dev/null
SZ=$(wc -c <"$WORK/spill.ktr")
# Byte budget for the GC leg: three uploads overflow it, two fit.
BUDGET=$((SZ * 5 / 2))

mkdir -p "$SPOOL/globex"
# -seg-span 1: every block lands in its own time window, so one upload
# splits into many segments and compaction has real work to do. The scan
# pool is one slot with no queue, so any overlapping queries surface 429s
# (the sequential legs below never overlap).
"$BIN/tracestored" -root "$ROOT" -http "127.0.0.1:$HTTP" \
    -watch "$SPOOL" -watch-every 200ms -seg-span 1 -retain-bytes "$BUDGET" \
    -cache-bytes $((64 * 1024 * 1024)) -query-concurrency 1 -tenant-queries 1 -tenant-queue 0 &
STORED_PID=$!

up=""
for _ in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then up=1; break; fi
    sleep 0.2
done
[ -n "$up" ] || { echo "store_smoke: tracestored HTTP never came up" >&2; exit 1; }
curl -fsS "$BASE/healthz" | grep -q '"ok":true'

# --- HTTP ingest -------------------------------------------------------
curl -fsS -X POST --data-binary "@$WORK/spill.ktr" "$BASE/ingest?tenant=acme" >"$WORK/ingest1.json"
EVENTS=$(sed -n 's/.*"events":\([0-9]*\).*/\1/p' "$WORK/ingest1.json")
[ -n "$EVENTS" ] && [ "$EVENTS" -gt 0 ] || { echo "store_smoke: ingest reported no events" >&2; exit 1; }

segs() { # segs <tenant>: segment count from /tenants
    curl -fsS "$BASE/tenants" | tr '}' '\n' | grep "\"name\":\"$1\"" \
        | sed -n 's/.*"segments":\([0-9]*\).*/\1/p'
}
qev() { # qev <query-string>: X-Events of a query
    curl -fsS -D "$WORK/hdr" "$BASE/query?$1" -o "$WORK/body" \
        && sed -n 's/^X-Events: *\([0-9]*\).*/\1/p' "$WORK/hdr" | tr -d '\r'
}

SEGS1=$(segs acme)
[ "$SEGS1" -ge 3 ] || { echo "store_smoke: expected a multi-segment split, got $SEGS1" >&2; exit 1; }

# --- Queries -----------------------------------------------------------
got=$(qev "tenant=acme")
[ "$got" = "$EVENTS" ] || { echo "store_smoke: full query saw $got events, ingest stored $EVENTS" >&2; exit 1; }
# Predicates and aggregations answer from the same scans.
sched=$(qev "tenant=acme&major=sched")
[ -n "$sched" ] && [ "$sched" -gt 0 ] && [ "$sched" -lt "$EVENTS" ] \
    || { echo "store_smoke: sched-filtered query returned $sched of $EVENTS" >&2; exit 1; }
curl -fsS "$BASE/query?tenant=acme&agg=overview" >"$WORK/overview.txt"
grep -q 'pid' "$WORK/overview.txt" \
    || { echo "store_smoke: overview aggregation empty" >&2; exit 1; }
curl -fsS "$BASE/query?tenant=acme&agg=lockstat" >/dev/null
# Error surface: bad params 400 (malformed cursors included), unknown
# tenant 404.
code=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/query?tenant=acme&from=x")
[ "$code" = 400 ] || { echo "store_smoke: bad query returned $code, want 400" >&2; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/query?tenant=acme&cursor=junk")
[ "$code" = 400 ] || { echo "store_smoke: bad cursor returned $code, want 400" >&2; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/query?tenant=nope")
[ "$code" = 404 ] || { echo "store_smoke: unknown tenant returned $code, want 404" >&2; exit 1; }

# --- Segment cache: a repeated query is served from cached partials ----
# (metrics are fetched to a file first: `curl -fsS | grep -q` SIGPIPEs
# under pipefail when grep exits on an early match.)
qev "tenant=acme" >/dev/null
curl -fsS "$BASE/metrics" >"$WORK/m-cache.txt"
grep -q '^tracestored_cache_hits_total{tenant="acme"} [1-9]' "$WORK/m-cache.txt" \
    || { echo "store_smoke: repeated query produced no cache hits" >&2; exit 1; }

# --- Cursor pagination: walking pages reproduces the full listing ------
curl -fsS "$BASE/query?tenant=acme" -o "$WORK/full.txt"
LIM=$((EVENTS / 7 + 1))
: >"$WORK/paged.txt"
CURSOR=""
walked=""
for _ in $(seq 1 20); do
    Q="tenant=acme&limit=$LIM"
    [ -n "$CURSOR" ] && Q="$Q&cursor=$CURSOR"
    curl -fsS -D "$WORK/hdr" "$BASE/query?$Q" >>"$WORK/paged.txt"
    CURSOR=$(sed -n 's/^X-Next-Cursor: *//p' "$WORK/hdr" | tr -d '\r')
    [ -z "$CURSOR" ] && { walked=1; break; }
done
[ -n "$walked" ] || { echo "store_smoke: cursor walk never terminated" >&2; exit 1; }
cmp -s "$WORK/full.txt" "$WORK/paged.txt" \
    || { echo "store_smoke: paginated walk differs from the unpaginated listing" >&2; exit 1; }

# --- Admission control: overlapping full scans are refused with 429 ----
# The pool is one slot with no queue; fire parallel brute-force scans
# until one lands while another holds the slot (retried: tiny scans can
# slip through sequentially).
saw429=""
for _ in $(seq 1 5); do
    rm -f "$WORK"/code.*
    CURLS=""
    for i in 1 2 3 4 5 6 7 8; do
        curl -s -o /dev/null -w '%{http_code}' \
            "$BASE/query?tenant=acme&noprune=1" >"$WORK/code.$i" &
        CURLS="$CURLS $!"
    done
    # Wait only on the curls: a bare `wait` would block on the daemon too.
    wait $CURLS
    if grep -lq '^429$' "$WORK"/code.* 2>/dev/null; then saw429=1; break; fi
done
[ -n "$saw429" ] || { echo "store_smoke: parallel queries never drew a 429" >&2; exit 1; }
grep -lq '^200$' "$WORK"/code.* >/dev/null \
    || { echo "store_smoke: overload refused every query; none was admitted" >&2; exit 1; }
curl -fsS "$BASE/metrics" >"$WORK/m-adm.txt"
grep -q '^tracestored_admission_rejected_total{tenant="acme"} [1-9]' "$WORK/m-adm.txt" \
    || { echo "store_smoke: metrics did not count the 429s" >&2; exit 1; }

# --- Compaction: segments shrink, events are conserved -----------------
curl -fsS -X POST "$BASE/admin/compact?tenant=acme" >"$WORK/compact.json"
SEGS2=$(segs acme)
[ "$SEGS2" -lt "$SEGS1" ] || { echo "store_smoke: compaction left $SEGS2 of $SEGS1 segments" >&2; exit 1; }
got=$(qev "tenant=acme")
[ "$got" = "$EVENTS" ] || { echo "store_smoke: compaction changed events $EVENTS -> $got" >&2; exit 1; }
# Every stored segment, compacted or not, is a well-formed trace file.
for f in "$ROOT"/acme/seg-*.ktr; do
    "$BIN/tracecheck" "$f" >/dev/null || { echo "store_smoke: tracecheck failed on $f" >&2; exit 1; }
done

# --- Watch-directory ingest -------------------------------------------
cp "$WORK/spill.ktr" "$SPOOL/globex/run1.ktr"
stored=""
for _ in $(seq 1 50); do
    [ -f "$SPOOL/globex/run1.ktr.stored" ] && { stored=1; break; }
    sleep 0.2
done
[ -n "$stored" ] || { echo "store_smoke: watched spill never ingested" >&2; exit 1; }
got=$(qev "tenant=globex")
[ "$got" = "$EVENTS" ] || { echo "store_smoke: watch ingest stored $got of $EVENTS events" >&2; exit 1; }

# --- GC: byte budget drops whole oldest segments -----------------------
curl -fsS -X POST --data-binary "@$WORK/spill.ktr" "$BASE/ingest?tenant=acme" >/dev/null
curl -fsS -X POST --data-binary "@$WORK/spill.ktr" "$BASE/ingest?tenant=acme" >/dev/null
curl -fsS -X POST "$BASE/admin/gc?tenant=acme" >"$WORK/gc.json"
grep -q '"segments":[1-9]' "$WORK/gc.json" || { echo "store_smoke: gc freed nothing" >&2; exit 1; }
got=$(qev "tenant=acme")
[ "$got" -gt 0 ] && [ "$got" -lt $((EVENTS * 3)) ] && [ $((got % EVENTS)) -eq 0 ] \
    || { echo "store_smoke: post-gc events $got not a whole number of uploads ($EVENTS)" >&2; exit 1; }

curl -fsS "$BASE/metrics" >"$WORK/metrics.txt"
grep -q '^tracestored_ingests_total{tenant="acme"}' "$WORK/metrics.txt"
grep -q '^tracestored_gc_segments_total{tenant="acme"} [1-9]' "$WORK/metrics.txt"
grep -q '^tracestored_query_seconds_count [1-9]' "$WORK/metrics.txt"

# --- Collector handoff: tracecolld -store uploads its drained spill ----
"$BIN/tracecolld" -listen "127.0.0.1:$CPORT" -http "127.0.0.1:$CHTTP" \
    -spill "$WORK/colld.ktr" -store "$BASE" -store-tenant colld >"$WORK/colld.out" &
COLLD_PID=$!
for _ in $(seq 1 50); do
    if curl -fsS "http://127.0.0.1:$CHTTP/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.2
done
"$BIN/tracerelay" -send "127.0.0.1:$CPORT" -cpus 2 -reconnect
kill -TERM "$COLLD_PID"
wait "$COLLD_PID"
COLLD_PID=""
grep -q 'spill uploaded' "$WORK/colld.out" \
    || { echo "store_smoke: collector never handed its spill to the store" >&2; cat "$WORK/colld.out" >&2; exit 1; }
got=$(qev "tenant=colld")
[ -n "$got" ] && [ "$got" -gt 0 ] || { echo "store_smoke: collector tenant holds no events" >&2; exit 1; }

# --- Graceful shutdown -------------------------------------------------
kill -TERM "$STORED_PID"
wait "$STORED_PID"
STORED_PID=""

echo "store_smoke: OK ($EVENTS events/upload, $SEGS1 -> $SEGS2 segments compacted, pagination + cache + 429 + gc + handoff verified)"
