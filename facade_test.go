package ktrace_test

import (
	"bytes"
	"strings"
	"testing"

	ktrace "k42trace"
)

func TestCompiledInDefault(t *testing.T) {
	if !ktrace.CompiledIn {
		t.Fatal("default builds must have tracing compiled in")
	}
}

func TestFacadeRelayRoundTrip(t *testing.T) {
	var file bytes.Buffer
	h, st := ktrace.RelaySaveHandler(&file)
	srv, err := ktrace.RelayListen("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	tr := ktrace.MustNew(ktrace.Config{CPUs: 1, BufWords: 64, NumBufs: 4,
		Mode: ktrace.Stream, Clock: ktrace.NewManualClock(1)})
	tr.EnableAll()
	done := make(chan error, 1)
	go func() {
		_, err := ktrace.RelaySend(tr, srv.Addr())
		done <- err
	}()
	c := tr.CPU(0)
	for i := 0; i < 200; i++ {
		c.Log1(ktrace.MajorUser, 30, uint64(i))
	}
	tr.Stop()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	blocks, anoms := st.Snapshot()
	if blocks == 0 || anoms != 0 {
		t.Fatalf("blocks=%d anoms=%d", blocks, anoms)
	}
	rd, err := ktrace.NewReader(bytes.NewReader(file.Bytes()), int64(file.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if rd.NumBlocks() != blocks {
		t.Errorf("file blocks %d != %d", rd.NumBlocks(), blocks)
	}
}

func TestFacadeLiveHandler(t *testing.T) {
	h, ch := ktrace.RelayLiveHandler(8)
	srv, err := ktrace.RelayListen("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr := ktrace.MustNew(ktrace.Config{CPUs: 1, BufWords: 64, NumBufs: 4,
		Mode: ktrace.Stream})
	tr.EnableAll()
	go ktrace.RelaySend(tr, srv.Addr())
	c := tr.CPU(0)
	for i := 0; i < 500; i++ {
		c.Log1(ktrace.MajorUser, 31, uint64(i))
	}
	tr.Stop()
	got := 0
	for b := range ch {
		evs, _ := ktrace.DecodeBuffer(b.Header.CPU, b.Words)
		got += len(evs)
	}
	if got == 0 {
		t.Fatal("no live events")
	}
}

func TestFacadeRedactAndCrashDump(t *testing.T) {
	tr := ktrace.MustNew(ktrace.Config{CPUs: 1, BufWords: 128, NumBufs: 2})
	tr.EnableAll()
	c := tr.CPU(0)
	c.Log1(ktrace.MajorMem, 1, 0x11)
	c.Log1(ktrace.MajorUser, 2, 0x22)
	var dump bytes.Buffer
	if err := tr.WriteCrashDump(&dump); err != nil {
		t.Fatal(err)
	}
	d, err := ktrace.ReadCrashDump(bytes.NewReader(dump.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	evs, _, err := d.Events(0)
	if err != nil || len(evs) == 0 {
		t.Fatalf("events=%d err=%v", len(evs), err)
	}
	red := ktrace.Redact(d.Memory[0][:d.Index[0]], ktrace.VisibleMask(ktrace.MajorMem))
	revs, _ := ktrace.DecodeBuffer(0, red)
	for _, e := range revs {
		if e.Major() == ktrace.MajorUser {
			t.Fatal("redaction leaked a USER event")
		}
	}
}

func TestFacadeLockOrderAndOverviewOnTrace(t *testing.T) {
	tr := ktrace.MustNew(ktrace.Config{CPUs: 1, BufWords: 256, NumBufs: 2})
	tr.EnableAll()
	tr.CPU(0).Log1(ktrace.MajorUser, 33, 1)
	evs, _ := tr.Dump(0)
	trace := ktrace.BuildTrace(evs, 1e9, ktrace.DefaultRegistry())
	rep := trace.LockOrder()
	if len(rep.Cycles) != 0 {
		t.Error("no locks, no cycles expected")
	}
	if !strings.Contains(rep.String(), "consistent") {
		t.Errorf("report: %s", rep)
	}
	if mp := trace.MemProfile(); mp.Samples != 0 {
		t.Error("no hwc samples expected")
	}
}

func TestFacadeClockHelpers(t *testing.T) {
	s := ktrace.NewSyncClock()
	if s.Hz() != 1e9 {
		t.Error("sync hz")
	}
	m := ktrace.NewManualClock(2)
	if m.Now(0) != 2 || m.Now(0) != 4 {
		t.Error("manual clock")
	}
	var src ktrace.ClockSource = m
	_ = src
}

func TestOpenTraceFileErrors(t *testing.T) {
	if _, _, _, err := ktrace.OpenTraceFile("/nonexistent/file.ktr"); err == nil {
		t.Error("missing file accepted")
	}
}
